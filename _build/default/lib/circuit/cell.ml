module Err = Smart_util.Err

type pass_style = Cmos_tgate | N_only | P_only

type kind =
  | Static of { gate_name : string; pull_down : Pdn.t; p_label : string }
  | Passgate of { style : pass_style; label : string }
  | Tristate of { p_label : string; n_label : string }
  | Domino of {
      gate_name : string;
      pull_down : Pdn.t;
      precharge : string;
      eval : string option;
      out_p : string;
      out_n : string;
      keeper : bool;
    }

let passgate_inv_p_ratio = 0.5
let passgate_inv_n_ratio = 0.25
let tristate_inv_p_ratio = 0.5
let tristate_inv_n_ratio = 0.25
let keeper_ratio = 0.15

let inverter ~p ~n =
  Static { gate_name = "inv"; pull_down = Pdn.leaf ~pin:"a" ~label:n; p_label = p }

let pin_names inputs = List.init inputs (fun i -> Printf.sprintf "a%d" i)

let nand ~inputs ~p ~n =
  if inputs < 2 then Err.fail "Cell.nand: needs >= 2 inputs";
  Static
    {
      gate_name = Printf.sprintf "nand%d" inputs;
      pull_down =
        Pdn.series (List.map (fun pin -> Pdn.leaf ~pin ~label:n) (pin_names inputs));
      p_label = p;
    }

let nor ~inputs ~p ~n =
  if inputs < 2 then Err.fail "Cell.nor: needs >= 2 inputs";
  Static
    {
      gate_name = Printf.sprintf "nor%d" inputs;
      pull_down =
        Pdn.parallel
          (List.map (fun pin -> Pdn.leaf ~pin ~label:n) (pin_names inputs));
      p_label = p;
    }

let aoi21 ~p ~n =
  Static
    {
      gate_name = "aoi21";
      pull_down =
        Pdn.parallel
          [
            Pdn.series [ Pdn.leaf ~pin:"a0" ~label:n; Pdn.leaf ~pin:"a1" ~label:n ];
            Pdn.leaf ~pin:"b" ~label:n;
          ];
      p_label = p;
    }

let oai21 ~p ~n =
  Static
    {
      gate_name = "oai21";
      pull_down =
        Pdn.series
          [
            Pdn.parallel [ Pdn.leaf ~pin:"a0" ~label:n; Pdn.leaf ~pin:"a1" ~label:n ];
            Pdn.leaf ~pin:"b" ~label:n;
          ];
      p_label = p;
    }

let family = function
  | Static _ -> Family.Static_cmos
  | Passgate _ -> Family.Pass
  | Tristate _ -> Family.Tristate_drv
  | Domino { eval = Some _; _ } -> Family.Domino_d1
  | Domino { eval = None; _ } -> Family.Domino_d2

let gate_name = function
  | Static { gate_name; _ } | Domino { gate_name; _ } -> gate_name
  | Passgate { style = Cmos_tgate; _ } -> "tgate"
  | Passgate { style = N_only; _ } -> "npass"
  | Passgate { style = P_only; _ } -> "ppass"
  | Tristate _ -> "tristate"

let input_pins = function
  | Static { pull_down; _ } | Domino { pull_down; _ } -> Pdn.pins pull_down
  | Passgate _ -> [ "d"; "s" ]
  | Tristate _ -> [ "d"; "en" ]

let has_clock = function
  | Domino _ -> true
  | Static _ | Passgate _ | Tristate _ -> false

let inverting = function
  | Static _ | Tristate _ -> true
  | Passgate _ | Domino _ -> false

let merge_widths ws =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (l, m) ->
      let cur = try Hashtbl.find tbl l with Not_found -> 0. in
      Hashtbl.replace tbl l (cur +. m))
    ws;
  Hashtbl.fold (fun l m acc -> (l, m) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let all_widths = function
  | Static { pull_down; p_label; _ } ->
    (* One PMOS per pull-down leaf (complementary dual). *)
    merge_widths
      ((p_label, float_of_int (Pdn.device_count pull_down)) :: Pdn.widths pull_down)
  | Passgate { style; label } ->
    let pass = match style with Cmos_tgate -> 2. | N_only | P_only -> 1. in
    let inv =
      match style with
      | Cmos_tgate -> passgate_inv_p_ratio +. passgate_inv_n_ratio
      | N_only | P_only -> 0.
    in
    [ (label, pass +. inv) ]
  | Tristate { p_label; n_label } ->
    merge_widths
      [
        (p_label, 2. +. tristate_inv_p_ratio);
        (n_label, 2. +. tristate_inv_n_ratio);
      ]
  | Domino { pull_down; precharge; eval; out_p; out_n; keeper; _ } ->
    let foot = match eval with Some l -> [ (l, 1.) ] | None -> [] in
    let keep = if keeper then [ (precharge, keeper_ratio) ] else [] in
    merge_widths
      ((precharge, 1.) :: (out_p, 1.) :: (out_n, 1.)
      :: (foot @ keep @ Pdn.widths pull_down))

let clocked_widths = function
  | Domino { precharge; eval; _ } ->
    let foot = match eval with Some l -> [ (l, 1.) ] | None -> [] in
    (precharge, 1.) :: foot
  | Static _ | Passgate _ | Tristate _ -> []

let device_count = function
  | Static { pull_down; _ } -> 2 * Pdn.device_count pull_down
  | Passgate { style = Cmos_tgate; _ } -> 4
  | Passgate _ -> 1
  | Tristate _ -> 6
  | Domino { pull_down; eval; keeper; _ } ->
    Pdn.device_count pull_down + 3
    + (match eval with Some _ -> 1 | None -> 0)
    + (if keeper then 1 else 0)

let labels kind = List.map fst (all_widths kind)

let pin_cap_widths kind pin =
  match kind with
  | Static { pull_down; p_label; _ } ->
    let hits = List.filter (fun (p, _) -> p = pin) (Pdn.leaves pull_down) in
    merge_widths
      (List.concat_map (fun (_, n_label) -> [ (n_label, 1.); (p_label, 1.) ]) hits)
  | Passgate { style; label } ->
    if pin = "s" then
      match style with
      | Cmos_tgate ->
        (* Select drives one pass device directly plus the local inverter,
           whose output drives the other pass device. *)
        [ (label, 1. +. passgate_inv_p_ratio +. passgate_inv_n_ratio) ]
      | N_only | P_only -> [ (label, 1.) ]
    else []
  | Tristate { p_label; n_label } ->
    if pin = "d" then [ (p_label, 1.); (n_label, 1.) ]
    else if pin = "en" then
      merge_widths
        [ (n_label, 1. +. tristate_inv_n_ratio); (p_label, tristate_inv_p_ratio) ]
    else []
  | Domino { pull_down; _ } ->
    let hits = List.filter (fun (p, _) -> p = pin) (Pdn.leaves pull_down) in
    merge_widths (List.map (fun (_, l) -> (l, 1.)) hits)

let pin_diff_widths kind pin =
  match kind with
  | Passgate { style; label } when pin = "d" ->
    let mult = match style with Cmos_tgate -> 2. | N_only | P_only -> 1. in
    [ (label, mult) ]
  | Static _ | Passgate _ | Tristate _ | Domino _ -> []

let rename_labels f = function
  | Static s -> Static { s with pull_down = Pdn.map_labels f s.pull_down; p_label = f s.p_label }
  | Passgate p -> Passgate { p with label = f p.label }
  | Tristate t -> Tristate { p_label = f t.p_label; n_label = f t.n_label }
  | Domino d ->
    Domino
      {
        d with
        pull_down = Pdn.map_labels f d.pull_down;
        precharge = f d.precharge;
        eval = Option.map f d.eval;
        out_p = f d.out_p;
        out_n = f d.out_n;
      }

let rec dual = function
  | Pdn.Leaf _ as l -> l
  | Pdn.Series xs -> Pdn.Parallel (List.map dual xs)
  | Pdn.Parallel xs -> Pdn.Series (List.map dual xs)

let pp ppf kind =
  match kind with
  | Static { gate_name; pull_down; p_label } ->
    Format.fprintf ppf "static:%s pdn=%a p=%s" gate_name Pdn.pp pull_down p_label
  | Passgate { style; label } ->
    let s =
      match style with Cmos_tgate -> "tgate" | N_only -> "npass" | P_only -> "ppass"
    in
    Format.fprintf ppf "pass:%s[%s]" s label
  | Tristate { p_label; n_label } ->
    Format.fprintf ppf "tristate[%s/%s]" p_label n_label
  | Domino { gate_name; pull_down; eval; _ } ->
    Format.fprintf ppf "domino-%s:%s pdn=%a"
      (match eval with Some _ -> "D1" | None -> "D2")
      gate_name Pdn.pp pull_down
