type t = Static_cmos | Pass | Tristate_drv | Domino_d1 | Domino_d2

let is_dynamic = function
  | Domino_d1 | Domino_d2 -> true
  | Static_cmos | Pass | Tristate_drv -> false

let to_string = function
  | Static_cmos -> "static"
  | Pass -> "pass"
  | Tristate_drv -> "tristate"
  | Domino_d1 -> "domino-D1"
  | Domino_d2 -> "domino-D2"

let pp ppf t = Format.pp_print_string ppf (to_string t)
