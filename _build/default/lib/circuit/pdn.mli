(** Series/parallel transistor networks.

    A pull-down network (PDN) describes the NMOS evaluation tree of a static
    or domino gate: a leaf is one transistor gated by an input pin and sized
    by a shared {e label}; [Series]/[Parallel] compose.  The same structure
    describes complementary pull-ups by duality.

    Labels — not individual devices — are the optimisation variables
    (§4: labelling for layout regularity). *)

type t =
  | Leaf of { pin : string; label : string }
  | Series of t list
  | Parallel of t list

val leaf : pin:string -> label:string -> t
val series : t list -> t
(** Flattens nested series; requires a non-empty list. *)

val parallel : t list -> t
(** Flattens nested parallels; requires a non-empty list. *)

val leaves : t -> (string * string) list
(** All (pin, label) pairs, left to right. *)

val pins : t -> string list
(** Distinct pins, left to right order of first occurrence. *)

val labels : t -> string list
(** Distinct labels. *)

val device_count : t -> int
val max_series_depth : t -> int
(** Height of the tallest transistor stack. *)

val widths : t -> (string * float) list
(** Total width as (label, multiplicity) pairs — multiplicity counts devices
    sharing a label. *)

val top_widths : t -> (string * float) list
(** Widths of only the devices whose drains sit on the network's output
    node (the first device of each series branch) — what loads a domino
    node capacitively. *)

val worst_series_chain : t -> (string * float) list
(** The most resistive conducting root-to-rail chain, as (label, count)
    resistance multipliers: resistance = sum_i [count_i * r / w(label_i)]. *)

val series_chain_through : t -> string -> (string * float) list option
(** Worst conducting chain that flows through a device gated by the given
    pin; [None] if the pin does not appear. *)

val conducts : (string -> bool) -> t -> bool
(** Boolean conduction under a pin assignment. *)

val conducts3 : (string -> [ `T | `F | `X ]) -> t -> [ `T | `F | `X ]
(** Three-valued conduction (unknown inputs propagate [`X]). *)

val map_pins : (string -> string) -> t -> t
val map_labels : (string -> string) -> t -> t
val pp : Format.formatter -> t -> unit
