module Err = Smart_util.Err

type device = {
  d_name : string;
  drain : string;
  gate : string;
  source : string;
  is_p : bool;
  width : float;
}

(* Expand a pull-down (or pass) network between [top] and [bottom] into
   NMOS devices, inventing internal stack nodes as needed.  Series chains
   thread through fresh nodes; parallel branches share the endpoints. *)
let expand_pdn ~fresh ~net_of_pin ~width_of ~prefix pdn ~top ~bottom =
  let devices = ref [] in
  let k = ref 0 in
  let rec go pdn top bottom =
    match pdn with
    | Pdn.Leaf { pin; label } ->
      incr k;
      devices :=
        {
          d_name = Printf.sprintf "%s_n%d" prefix !k;
          drain = top;
          gate = net_of_pin pin;
          source = bottom;
          is_p = false;
          width = width_of label;
        }
        :: !devices
    | Pdn.Series xs ->
      let rec chain nodes = function
        | [] -> ()
        | [ last ] -> go last (List.hd nodes) bottom
        | x :: rest ->
          let mid = fresh () in
          go x (List.hd nodes) mid;
          chain (mid :: nodes) rest
      in
      chain [ top ] xs
    | Pdn.Parallel xs -> List.iter (fun x -> go x top bottom) xs
  in
  go pdn top bottom;
  List.rev !devices

(* The complementary pull-up: dual structure between vdd and the output,
   every device PMOS at the gate's shared p-label width. *)
let expand_pullup ~fresh ~net_of_pin ~p_width ~prefix pdn ~out ~vdd =
  let devices = ref [] in
  let k = ref 0 in
  let rec go pdn top bottom =
    match pdn with
    | Pdn.Leaf { pin; _ } ->
      incr k;
      devices :=
        {
          d_name = Printf.sprintf "%s_p%d" prefix !k;
          drain = bottom;
          gate = net_of_pin pin;
          source = top;
          is_p = true;
          width = p_width;
        }
        :: !devices
    | Pdn.Series xs ->
      (* Dual of series is parallel. *)
      List.iter (fun x -> go x top bottom) xs
    | Pdn.Parallel xs ->
      let rec chain top = function
        | [] -> ()
        | [ last ] -> go last top bottom
        | x :: rest ->
          let mid = fresh () in
          go x top mid;
          chain mid rest
      in
      chain top xs
  in
  go pdn vdd out;
  List.rev !devices

let expand_instance ~fresh ~sizing (netname : Netlist.net_id -> string)
    (i : Netlist.instance) =
  let prefix = "m_" ^ i.Netlist.inst_name in
  let net_of_pin p =
    match List.assoc_opt p i.Netlist.conns with
    | Some nid -> netname nid
    | None -> Err.fail "Spice: pin %s unconnected on %s" p i.Netlist.inst_name
  in
  let out = netname i.Netlist.out in
  let clk =
    match i.Netlist.clk with Some nid -> netname nid | None -> "clk"
  in
  match i.Netlist.cell with
  | Cell.Static { pull_down; p_label; _ } ->
    expand_pdn ~fresh ~net_of_pin ~width_of:sizing ~prefix pull_down ~top:out
      ~bottom:"vss"
    @ expand_pullup ~fresh ~net_of_pin ~p_width:(sizing p_label) ~prefix
        pull_down ~out ~vdd:"vdd"
  | Cell.Passgate { style; label } ->
    let w = sizing label in
    let d = net_of_pin "d" and s = net_of_pin "s" in
    let pass_n sb_gate =
      { d_name = prefix ^ "_pn"; drain = out; gate = sb_gate; source = d;
        is_p = false; width = w }
    in
    let pass_p sb_gate =
      { d_name = prefix ^ "_pp"; drain = out; gate = sb_gate; source = d;
        is_p = true; width = w }
    in
    (match style with
    | Cell.N_only -> [ pass_n s ]
    | Cell.P_only -> [ pass_p s ]
    | Cell.Cmos_tgate ->
      (* Local inverter generates the complement select. *)
      let sb = fresh () in
      [
        pass_n s;
        pass_p sb;
        { d_name = prefix ^ "_ivp"; drain = sb; gate = s; source = "vdd";
          is_p = true; width = Cell.passgate_inv_p_ratio *. w };
        { d_name = prefix ^ "_ivn"; drain = sb; gate = s; source = "vss";
          is_p = false; width = Cell.passgate_inv_n_ratio *. w };
      ])
  | Cell.Tristate { p_label; n_label } ->
    let wp = sizing p_label and wn = sizing n_label in
    let d = net_of_pin "d" and en = net_of_pin "en" in
    let enb = fresh () in
    let mid_p = fresh () and mid_n = fresh () in
    [
      { d_name = prefix ^ "_p1"; drain = mid_p; gate = d; source = "vdd";
        is_p = true; width = wp };
      { d_name = prefix ^ "_p2"; drain = out; gate = enb; source = mid_p;
        is_p = true; width = wp };
      { d_name = prefix ^ "_n2"; drain = out; gate = en; source = mid_n;
        is_p = false; width = wn };
      { d_name = prefix ^ "_n1"; drain = mid_n; gate = d; source = "vss";
        is_p = false; width = wn };
      { d_name = prefix ^ "_ivp"; drain = enb; gate = en; source = "vdd";
        is_p = true; width = Cell.tristate_inv_p_ratio *. wp };
      { d_name = prefix ^ "_ivn"; drain = enb; gate = en; source = "vss";
        is_p = false; width = Cell.tristate_inv_n_ratio *. wn };
    ]
  | Cell.Domino { pull_down; precharge; eval; out_p; out_n; keeper; _ } ->
    let node = fresh () in
    let pre =
      { d_name = prefix ^ "_pre"; drain = node; gate = clk; source = "vdd";
        is_p = true; width = sizing precharge }
    in
    let foot_devices, pdn_bottom =
      match eval with
      | Some f ->
        let foot_node = fresh () in
        ( [ { d_name = prefix ^ "_foot"; drain = foot_node; gate = clk;
              source = "vss"; is_p = false; width = sizing f } ],
          foot_node )
      | None -> ([], "vss")
    in
    let pdn =
      expand_pdn ~fresh ~net_of_pin ~width_of:sizing ~prefix pull_down
        ~top:node ~bottom:pdn_bottom
    in
    let inv =
      [
        { d_name = prefix ^ "_op"; drain = out; gate = node; source = "vdd";
          is_p = true; width = sizing out_p };
        { d_name = prefix ^ "_on"; drain = out; gate = node; source = "vss";
          is_p = false; width = sizing out_n };
      ]
    in
    let keep =
      if keeper then
        [ { d_name = prefix ^ "_keep"; drain = node; gate = out;
            source = "vdd"; is_p = true;
            width = Cell.keeper_ratio *. sizing precharge } ]
      else []
    in
    (pre :: foot_devices) @ pdn @ inv @ keep

let all_devices (t : Netlist.t) ~sizing =
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "x%d" !counter
  in
  let netname nid =
    let n = Netlist.net t nid in
    n.Netlist.net_name
  in
  Array.to_list t.Netlist.instances
  |> List.concat_map (expand_instance ~fresh ~sizing netname)

let subckt ?(lmin_um = 0.18) (t : Netlist.t) ~sizing =
  let buf = Buffer.create 4096 in
  let netname nid = (Netlist.net t nid).Netlist.net_name in
  let ports =
    List.map netname t.Netlist.inputs
    @ List.map netname t.Netlist.outputs
    @ (match t.Netlist.clock with Some c -> [ netname c ] | None -> [])
    @ [ "vdd"; "vss" ]
  in
  Buffer.add_string buf
    (Printf.sprintf "* SMART export of %s (%d cells, %d devices)\n"
       t.Netlist.name
       (Netlist.instance_count t)
       (Netlist.device_count t));
  Buffer.add_string buf
    (Printf.sprintf ".SUBCKT %s %s\n" t.Netlist.name (String.concat " " ports));
  List.iter
    (fun d ->
      Buffer.add_string buf
        (Printf.sprintf "M%s %s %s %s %s W=%.3fU L=%.2fU\n" d.d_name d.drain
           d.gate d.source
           (if d.is_p then "vdd PMOS" else "vss NMOS")
           d.width lmin_um))
    (all_devices t ~sizing);
  Buffer.add_string buf (Printf.sprintf ".ENDS %s\n" t.Netlist.name);
  Buffer.contents buf

let device_cards t ~sizing = List.length (all_devices t ~sizing)

let total_width_of_deck t ~sizing =
  List.fold_left (fun acc d -> acc +. d.width) 0. (all_devices t ~sizing)
