(** Circuit families handled by SMART (§5.3).

    High-performance datapaths mix static CMOS, pass logic, tri-states and
    domino; the constraint generator and the timer treat each differently
    (rise/fall for static; data vs. control arcs for pass gates;
    precharge/evaluate for dynamic, clocked D1 vs. unclocked D2). *)

type t =
  | Static_cmos  (** complementary static CMOS *)
  | Pass  (** pass-transistor / transmission-gate logic *)
  | Tristate_drv  (** tri-state drivers sharing a bus *)
  | Domino_d1  (** domino with clocked evaluate device *)
  | Domino_d2  (** domino without clocked evaluate (footless) *)

val is_dynamic : t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
