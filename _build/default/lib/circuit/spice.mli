(** SPICE netlist export.

    Expands every cell to its transistors — pull-down networks with their
    internal stack nodes, complementary pull-ups, pass devices and their
    local select inverters, tri-state stacks, domino precharge/foot/keeper
    devices — under a concrete label sizing, and emits a [.SUBCKT] deck.

    The export is the hand-off a sized SMART macro would take into a
    layout/verification flow, and doubles as an independent witness that
    the width accounting used throughout the library (label multiplicity ×
    width) matches an explicit device-by-device expansion: the test suite
    diffs the two. *)

val subckt : ?lmin_um:float -> Netlist.t -> sizing:(string -> float) -> string
(** [subckt netlist ~sizing] renders a [.SUBCKT] card (ports: primary
    inputs, outputs, clock when present, [vdd]/[vss]), one [M...] card per
    transistor with [W] from the sizing and [L] = [lmin_um] (default
    0.18 µm), internal stack nodes included.  Deterministic output. *)

val device_cards : Netlist.t -> sizing:(string -> float) -> int
(** Number of transistor cards {!subckt} emits (tested against
    [Netlist.device_count]). *)

val total_width_of_deck : Netlist.t -> sizing:(string -> float) -> float
(** Sum of the [W=] values emitted — must equal [Netlist.total_width]. *)
