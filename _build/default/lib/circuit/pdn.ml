module Err = Smart_util.Err

type t =
  | Leaf of { pin : string; label : string }
  | Series of t list
  | Parallel of t list

let leaf ~pin ~label = Leaf { pin; label }

let series = function
  | [] -> Err.fail "Pdn.series: empty"
  | [ x ] -> x
  | xs ->
    Series
      (List.concat_map (function Series ys -> ys | other -> [ other ]) xs)

let parallel = function
  | [] -> Err.fail "Pdn.parallel: empty"
  | [ x ] -> x
  | xs ->
    Parallel
      (List.concat_map (function Parallel ys -> ys | other -> [ other ]) xs)

let rec leaves = function
  | Leaf { pin; label } -> [ (pin, label) ]
  | Series xs | Parallel xs -> List.concat_map leaves xs

let pins t =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun (pin, _) ->
      if Hashtbl.mem seen pin then None
      else begin
        Hashtbl.add seen pin ();
        Some pin
      end)
    (leaves t)

let labels t =
  List.map snd (leaves t) |> List.sort_uniq String.compare

let device_count t = List.length (leaves t)

let rec max_series_depth = function
  | Leaf _ -> 1
  | Series xs -> List.fold_left (fun acc x -> acc + max_series_depth x) 0 xs
  | Parallel xs ->
    List.fold_left (fun acc x -> max acc (max_series_depth x)) 0 xs

let widths t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (_, label) ->
      let cur = try Hashtbl.find tbl label with Not_found -> 0. in
      Hashtbl.replace tbl label (cur +. 1.))
    (leaves t);
  Hashtbl.fold (fun l c acc -> (l, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let top_widths t =
  let rec tops = function
    | Leaf { pin = _; label } -> [ label ]
    | Series [] -> []
    | Series (x :: _) -> tops x
    | Parallel xs -> List.concat_map tops xs
  in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun label ->
      let cur = try Hashtbl.find tbl label with Not_found -> 0. in
      Hashtbl.replace tbl label (cur +. 1.))
    (tops t);
  Hashtbl.fold (fun l c acc -> (l, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Merge resistance-multiplier association lists. *)
let merge_chains a b =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (l, c) ->
      let cur = try Hashtbl.find tbl l with Not_found -> 0. in
      Hashtbl.replace tbl l (cur +. c))
    (a @ b);
  Hashtbl.fold (fun l c acc -> (l, c) :: acc) tbl []
  |> List.sort (fun (x, _) (y, _) -> String.compare x y)

let chain_weight chain = List.fold_left (fun acc (_, c) -> acc +. c) 0. chain

let rec worst_series_chain = function
  | Leaf { label; _ } -> [ (label, 1.) ]
  | Series xs ->
    List.fold_left (fun acc x -> merge_chains acc (worst_series_chain x)) [] xs
  | Parallel xs ->
    (* Worst conducting case: only the most resistive branch is on. *)
    let chains = List.map worst_series_chain xs in
    List.fold_left
      (fun best c -> if chain_weight c > chain_weight best then c else best)
      (List.hd chains) (List.tl chains)

let rec series_chain_through t pin =
  match t with
  | Leaf { pin = p; label } -> if p = pin then Some [ (label, 1.) ] else None
  | Series xs ->
    (* Current flows through every child; the child containing the pin uses
       its through-chain, the others contribute their own worst chains. *)
    let hits = List.filter_map (fun x -> series_chain_through x pin) xs in
    (match hits with
    | [] -> None
    | _ ->
      let through =
        List.fold_left
          (fun best c -> if chain_weight c > chain_weight best then c else best)
          (List.hd hits) (List.tl hits)
      in
      let others =
        List.filter_map
          (fun x ->
            match series_chain_through x pin with
            | Some _ -> None
            | None -> Some (worst_series_chain x))
          xs
      in
      Some (List.fold_left merge_chains through others))
  | Parallel xs ->
    (* Worst case: all sibling branches off, current confined to the branch
       containing the pin. *)
    let hits = List.filter_map (fun x -> series_chain_through x pin) xs in
    (match hits with
    | [] -> None
    | c :: cs ->
      Some
        (List.fold_left
           (fun best c' -> if chain_weight c' > chain_weight best then c' else best)
           c cs))

let rec conducts env = function
  | Leaf { pin; _ } -> env pin
  | Series xs -> List.for_all (conducts env) xs
  | Parallel xs -> List.exists (conducts env) xs

let rec conducts3 env = function
  | Leaf { pin; _ } -> env pin
  | Series xs ->
    List.fold_left
      (fun acc x ->
        match (acc, conducts3 env x) with
        | `F, _ | _, `F -> `F
        | `X, _ | _, `X -> `X
        | `T, `T -> `T)
      `T xs
  | Parallel xs ->
    List.fold_left
      (fun acc x ->
        match (acc, conducts3 env x) with
        | `T, _ | _, `T -> `T
        | `X, _ | _, `X -> `X
        | `F, `F -> `F)
      `F xs

let rec map_pins f = function
  | Leaf { pin; label } -> Leaf { pin = f pin; label }
  | Series xs -> Series (List.map (map_pins f) xs)
  | Parallel xs -> Parallel (List.map (map_pins f) xs)

let rec map_labels f = function
  | Leaf { pin; label } -> Leaf { pin; label = f label }
  | Series xs -> Series (List.map (map_labels f) xs)
  | Parallel xs -> Parallel (List.map (map_labels f) xs)

let rec pp ppf = function
  | Leaf { pin; label } -> Format.fprintf ppf "%s[%s]" pin label
  | Series xs ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf " . ")
         pp)
      xs
  | Parallel xs ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf " | ")
         pp)
      xs
