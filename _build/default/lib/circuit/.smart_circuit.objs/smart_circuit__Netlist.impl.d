lib/circuit/netlist.ml: Array Cell Family Format Hashtbl List Queue Seq Smart_util String
