lib/circuit/pdn.mli: Format
