lib/circuit/cell.mli: Family Format Pdn
