lib/circuit/spice.ml: Array Buffer Cell List Netlist Pdn Printf Smart_util String
