lib/circuit/family.ml: Format
