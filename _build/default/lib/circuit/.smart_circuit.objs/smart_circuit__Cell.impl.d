lib/circuit/cell.ml: Family Format Hashtbl List Option Pdn Printf Smart_util String
