lib/circuit/spice.mli: Netlist
