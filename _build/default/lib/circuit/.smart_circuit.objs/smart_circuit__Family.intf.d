lib/circuit/family.mli: Format
