lib/circuit/pdn.ml: Format Hashtbl List Smart_util String
