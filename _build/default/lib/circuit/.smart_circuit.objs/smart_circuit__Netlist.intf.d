lib/circuit/netlist.mli: Cell Format
