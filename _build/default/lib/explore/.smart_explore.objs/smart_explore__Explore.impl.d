lib/explore/explore.ml: Float List Printf Smart_circuit Smart_constraints Smart_database Smart_macros Smart_power Smart_sizer Smart_tech Smart_util String
