module Err = Smart_util.Err
module Tech = Smart_tech.Tech
module Netlist = Smart_circuit.Netlist
module Macro = Smart_macros.Macro
module Database = Smart_database.Database
module Constraints = Smart_constraints.Constraints
module Sizer = Smart_sizer.Sizer
module Power = Smart_power.Power

type metric = Area | Power | Clock_load

let metric_to_string = function
  | Area -> "area"
  | Power -> "power"
  | Clock_load -> "clock-load"

type candidate = {
  entry_name : string;
  info : Macro.info;
  outcome : Sizer.outcome;
  power_report : Power.report;
  score : float;
}

type ranking = {
  winner : candidate;
  ranked : candidate list;
  rejected : (string * string) list;
}

let objective_of_metric = function
  | Area -> Constraints.Area
  | Power -> Constraints.Power_weighted
  | Clock_load -> Constraints.Clock_load

let score_of metric (outcome : Sizer.outcome) (power : Power.report) =
  match metric with
  | Area -> outcome.Sizer.total_width
  | Power -> power.Power.total_uw
  | Clock_load ->
    (* Tie-break pure clock load by a light area term. *)
    outcome.Sizer.clock_load_width +. (0.05 *. outcome.Sizer.total_width)

let size_candidates ?options ~metric tech spec named_infos =
  let options =
    let base = match options with Some o -> o | None -> Sizer.default_options in
    { base with Sizer.objective = objective_of_metric metric }
  in
  let accepted = ref [] in
  let rejected = ref [] in
  List.iter
    (fun (entry_name, (info : Macro.info)) ->
      match Sizer.size ~options tech info.Macro.netlist spec with
      | Error reason -> rejected := (entry_name, reason) :: !rejected
      | Ok outcome ->
        let power_report =
          Power.estimate tech info.Macro.netlist ~sizing:outcome.Sizer.sizing_fn
        in
        let score = score_of metric outcome power_report in
        accepted := { entry_name; info; outcome; power_report; score } :: !accepted)
    named_infos;
  let ranked = List.sort (fun a b -> Float.compare a.score b.score) !accepted in
  match ranked with
  | [] ->
    Error
      (Printf.sprintf "Explore: no topology meets the specification (%s)"
         (String.concat "; "
            (List.map (fun (n, r) -> n ^ ": " ^ r) (List.rev !rejected))))
  | winner :: _ -> Ok { winner; ranked; rejected = List.rev !rejected }

let explore ?options ?(metric = Area) ~db ~kind ~requirements tech spec =
  let built = Database.build_all db ~kind requirements in
  if built = [] then
    Error (Printf.sprintf "Explore: no applicable %s topology in database" kind)
  else
    size_candidates ?options ~metric tech spec
      (List.map
         (fun ((e : Database.entry), info) -> (e.Database.entry_name, info))
         built)

let tune ?options ?(metric = Area) ~variants tech spec =
  if variants = [] then Err.fail "Explore.tune: no variants";
  size_candidates ?options ~metric tech spec variants

let sweep_area_delay ?options ?(points = 8) ?(min_relax = 1.0)
    ?(max_relax = 1.35) tech netlist spec =
  let options = match options with Some o -> o | None -> Sizer.default_options in
  match Sizer.minimize_delay ~options tech netlist spec with
  | Error _ -> []
  | Ok { Sizer.golden_min; model_min } ->
    let options = { options with Sizer.min_delay_hint = Some model_min } in
    let targets =
      List.init points (fun k ->
          golden_min
          *. (min_relax
             +. ((max_relax -. min_relax) *. float_of_int k
                /. float_of_int (points - 1))))
    in
    List.filter_map
      (fun target ->
        let spec' = { spec with Constraints.target_delay = target } in
        match Sizer.size ~options tech netlist spec' with
        | Error _ -> None
        | Ok o -> Some (target, o.Sizer.total_width))
      targets
