lib/sta/sta.ml: Array Hashtbl List Smart_circuit Smart_models Smart_tech String
