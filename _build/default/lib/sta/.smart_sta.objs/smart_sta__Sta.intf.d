lib/sta/sta.mli: Smart_circuit Smart_models Smart_tech
