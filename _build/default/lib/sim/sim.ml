module Err = Smart_util.Err
module Netlist = Smart_circuit.Netlist
module Cell = Smart_circuit.Cell
module Pdn = Smart_circuit.Pdn

type phase = Precharge | Evaluate

let to3 = function
  | Logic.V1 -> `T
  | Logic.V0 -> `F
  | Logic.X | Logic.Z -> `X

let of3 = function `T -> Logic.V1 | `F -> Logic.V0 | `X -> Logic.X

(* Value an instance drives onto its output net, given current net values. *)
let eval_instance phase values (i : Netlist.instance) =
  let pin p =
    match List.assoc_opt p i.Netlist.conns with
    | Some nid -> values.(nid)
    | None -> Logic.X
  in
  let pdn_env p = to3 (pin p) in
  match i.Netlist.cell with
  | Cell.Static { pull_down; _ } ->
    (* Complementary gate: output is NOT of the pull-down condition. *)
    (match Pdn.conducts3 pdn_env pull_down with
    | `T -> Logic.V0
    | `F -> Logic.V1
    | `X -> Logic.X)
  | Cell.Passgate { style; _ } ->
    let cond =
      match (style, to3 (pin "s")) with
      | (Cell.Cmos_tgate | Cell.N_only), c -> c
      | Cell.P_only, `T -> `F
      | Cell.P_only, `F -> `T
      | Cell.P_only, `X -> `X
    in
    (match cond with
    | `T -> pin "d"
    | `F -> Logic.Z
    | `X -> if pin "d" = Logic.Z then Logic.Z else Logic.X)
  | Cell.Tristate _ ->
    (match to3 (pin "en") with
    | `T -> Logic.lnot (pin "d")
    | `F -> Logic.Z
    | `X -> Logic.X)
  | Cell.Domino { pull_down; _ } ->
    (match phase with
    | Precharge -> Logic.V0
    | Evaluate -> of3 (Pdn.conducts3 pdn_env pull_down))

let settle ?(phase = Evaluate) (t : Netlist.t) inputs =
  let n = Array.length t.Netlist.nets in
  let values = Array.make n Logic.Z in
  Array.iter
    (fun (net : Netlist.net) ->
      match net.Netlist.net_kind with
      | Netlist.Primary_input ->
        values.(net.Netlist.net_id) <-
          (match List.assoc_opt net.Netlist.net_name inputs with
          | Some v -> v
          | None -> Logic.X)
      | Netlist.Clock ->
        values.(net.Netlist.net_id) <-
          (match phase with Precharge -> Logic.V0 | Evaluate -> Logic.V1)
      | Netlist.Primary_output | Netlist.Internal -> ())
    t.Netlist.nets;
  (* Group instances by driven net once; iterate sweeps to fixpoint.  The
     bound covers the worst pass-gate chain plus slack. *)
  let driven = Hashtbl.create 64 in
  Array.iter
    (fun (i : Netlist.instance) ->
      let cur = try Hashtbl.find driven i.Netlist.out with Not_found -> [] in
      Hashtbl.replace driven i.Netlist.out (i :: cur))
    t.Netlist.instances;
  let max_sweeps = n + 8 in
  let changed = ref true in
  let sweeps = ref 0 in
  while !changed && !sweeps < max_sweeps do
    changed := false;
    incr sweeps;
    Hashtbl.iter
      (fun nid insts ->
        let v =
          List.fold_left
            (fun acc i -> Logic.resolve acc (eval_instance phase values i))
            Logic.Z insts
        in
        if not (Logic.equal values.(nid) v) then begin
          values.(nid) <- v;
          changed := true
        end)
      driven
  done;
  if !changed then Err.fail "Sim: netlist %s did not settle" t.Netlist.name;
  values

let eval ?phase t inputs =
  let values = settle ?phase t inputs in
  List.map
    (fun nid -> ((Netlist.net t nid).Netlist.net_name, values.(nid)))
    t.Netlist.outputs

let eval_net ?phase t inputs name =
  let values = settle ?phase t inputs in
  values.(Netlist.find_net t name)

let eval_bits ?phase t inputs =
  eval ?phase t (List.map (fun (n, b) -> (n, Logic.of_bool b)) inputs)
