type value = V0 | V1 | X | Z

let of_bool b = if b then V1 else V0
let to_bool = function V0 -> Some false | V1 -> Some true | X | Z -> None

let resolve a b =
  match (a, b) with
  | Z, v | v, Z -> v
  | V0, V0 -> V0
  | V1, V1 -> V1
  | _, _ -> X

let lnot = function V0 -> V1 | V1 -> V0 | X -> X | Z -> X
let equal a b = a = b
let to_string = function V0 -> "0" | V1 -> "1" | X -> "X" | Z -> "Z"
let pp ppf v = Format.pp_print_string ppf (to_string v)
