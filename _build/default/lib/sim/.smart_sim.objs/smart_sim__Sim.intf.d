lib/sim/sim.mli: Logic Smart_circuit
