lib/sim/logic.mli: Format
