lib/sim/logic.ml: Format
