lib/sim/sim.ml: Array Hashtbl List Logic Smart_circuit Smart_util
