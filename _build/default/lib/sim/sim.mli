(** Switch-level functional simulation of netlists.

    Evaluates a netlist to a fixpoint under a primary-input assignment.
    Domino stages are phase-aware: in [Precharge] every domino output is
    forced low (the precharged node is high, the output inverter low); in
    [Evaluate] the pull-down network decides.  Pass-gate and tri-state
    shared nets use four-valued bus resolution.

    This simulator is the functional oracle for the macro generators: every
    generated mux/decoder/adder/... is checked against its arithmetic
    specification before any sizing runs. *)

type phase = Precharge | Evaluate

val eval :
  ?phase:phase ->
  Smart_circuit.Netlist.t ->
  (string * Logic.value) list ->
  (string * Logic.value) list
(** [eval ~phase netlist inputs] returns the values of all primary outputs
    (by net name) after settling.  Unlisted inputs are [X].  Default phase
    is [Evaluate]. *)

val eval_net :
  ?phase:phase ->
  Smart_circuit.Netlist.t ->
  (string * Logic.value) list ->
  string ->
  Logic.value
(** Value of one named net after settling. *)

val eval_bits :
  ?phase:phase ->
  Smart_circuit.Netlist.t ->
  (string * bool) list ->
  (string * Logic.value) list
(** Convenience wrapper taking boolean inputs. *)
