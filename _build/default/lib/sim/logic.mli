(** Four-valued logic for switch-level simulation. *)

type value = V0 | V1 | X  (** unknown *) | Z  (** undriven *)

val of_bool : bool -> value
val to_bool : value -> bool option
(** [Some] for the two determinate values. *)

val resolve : value -> value -> value
(** Bus resolution: [Z] yields to anything; conflicting strong values
    give [X]. *)

val lnot : value -> value
val equal : value -> value -> bool
val to_string : value -> string
val pp : Format.formatter -> value -> unit
