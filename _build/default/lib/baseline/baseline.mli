(** The "original design" baseline: schedule-constrained manual sizing.

    The paper's comparisons are against hand-sized production circuits,
    which §2(c) characterises as over-designed: "tight schedule constraints
    limit design-space exploration, thus resulting in over-design".  This
    module reproduces that designer systematically, as the greedy
    critical-path iteration real designers run by hand:

    {ul
    {- start everything at minimum width;}
    {- repeat: time the design (golden STA), walk the critical path, bump
       the drive devices on it by a coarse step — until the target is met
       or nothing improves;}
    {- then apply a uniform conservative margin (worst-case corners, noise
       headroom), snap sizes {e up} to a layout grid (discrete device
       menus), and size all clock devices (domino precharge/evaluate feet)
       uniformly to the macro-wide worst requirement — the labour-saving
       habit SMART's Table 1 clock-load savings come from.}}

    The achieved delay of the baseline (by golden STA) defines the
    performance target SMART must match, exactly as in §6.1 where PathMill
    measures the original design's delay before SMART re-sizes it. *)

type params = {
  step : float;  (** per-round upsize multiplier on critical devices *)
  margin : float;  (** final uniform over-design multiplier *)
  grid : float;  (** layout grid; widths round up to multiples, µm *)
  uniform_clock : bool;  (** size all clocked devices to the macro max *)
  max_rounds : int;  (** cap on greedy iterations *)
}

val default_params : params

type result = {
  sizing : (string * float) list;
  sizing_fn : string -> float;
  achieved_delay : float;  (** golden STA evaluate delay, ps *)
  precharge_delay : float;  (** golden STA worst precharge arrival, ps *)
  total_width : float;
  clock_load_width : float;
  rounds : int;  (** greedy iterations used *)
  met_target : bool;
}

val size :
  ?params:params ->
  target:float ->
  Smart_tech.Tech.t ->
  Smart_circuit.Netlist.t ->
  result
(** Deterministic manual-style sizing of a netlist toward [target] ps. *)
