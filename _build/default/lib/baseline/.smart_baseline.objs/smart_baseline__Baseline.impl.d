lib/baseline/baseline.ml: Array Float Hashtbl List Smart_circuit Smart_sta Smart_tech String
