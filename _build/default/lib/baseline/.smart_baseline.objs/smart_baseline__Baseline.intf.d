lib/baseline/baseline.mli: Smart_circuit Smart_tech
