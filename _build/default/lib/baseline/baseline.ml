module Netlist = Smart_circuit.Netlist
module Cell = Smart_circuit.Cell
module Tech = Smart_tech.Tech
module Sta = Smart_sta.Sta

type params = {
  step : float;
  margin : float;
  grid : float;
  uniform_clock : bool;
  max_rounds : int;
}

let default_params =
  { step = 1.25; margin = 1.15; grid = 0.5; uniform_clock = true; max_rounds = 400 }

type result = {
  sizing : (string * float) list;
  sizing_fn : string -> float;
  achieved_delay : float;
  precharge_delay : float;
  total_width : float;
  clock_load_width : float;
  rounds : int;
  met_target : bool;
}

let clamp tech w = Float.max tech.Tech.w_min (Float.min tech.Tech.w_max w)
let round_up_to_grid grid w = grid *. Float.ceil ((w /. grid) -. 1e-9)

(* Labels a designer bumps to speed up this cell along a data/evaluate
   path: drive devices only.  Clock devices (precharge, evaluate foot) are
   sized by rule of thumb afterwards, never path-tuned. *)
let drive_labels cell =
  match cell with
  | Cell.Domino { pull_down; out_p; out_n; _ } ->
    (List.map fst (Smart_circuit.Pdn.widths pull_down) @ [ out_p; out_n ])
    |> List.sort_uniq String.compare
  | Cell.Static _ | Cell.Passgate _ | Cell.Tristate _ ->
    List.map fst (Cell.all_widths cell)

let size ?(params = default_params) ~target tech netlist =
  let widths : (string, float) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun l -> Hashtbl.replace widths l tech.Tech.w_min)
    (Netlist.labels netlist);
  let sizing_fn l = try Hashtbl.find widths l with Not_found -> tech.Tech.w_min in
  (* Greedy sensitivity-guided critical-path iteration (manual TILOS): each
     round, try bumping the drive devices of every cell on the critical
     path and keep only the single most effective bump.  Labels are shared
     across bit slices, so a blind bump can easily hurt (it loads every
     slice's driver); the sensitivity check is what a designer's quick
     re-time provides. *)
  let rounds = ref 0 in
  let met = ref false in
  let stalled = ref false in
  let bump labels =
    List.filter_map
      (fun l ->
        let w = sizing_fn l in
        let w' = clamp tech (w *. params.step) in
        if w' > w then begin
          Hashtbl.replace widths l w';
          Some (l, w)
        end
        else None)
      labels
  in
  let revert saved = List.iter (fun (l, w) -> Hashtbl.replace widths l w) saved in
  while (not !met) && (not !stalled) && !rounds < params.max_rounds do
    incr rounds;
    let sta = Sta.analyze ~mode:Sta.Evaluate tech netlist ~sizing:sizing_fn in
    if sta.Sta.max_delay <= target then met := true
    else begin
      let path = Sta.critical_path sta netlist in
      (* Candidate moves: individual drive labels of cells on the path
         (fine-grained), plus each cell's whole label set (coarse). *)
      let candidates =
        List.sort_uniq compare
          (List.concat_map
             (fun ((i : Netlist.instance), _) ->
               let ls = drive_labels i.Netlist.cell in
               ls :: List.map (fun l -> [ l ]) ls)
             path)
      in
      let best = ref None in
      List.iter
        (fun labels ->
          let saved = bump labels in
          if saved <> [] then begin
            let sta' =
              Sta.analyze ~mode:Sta.Evaluate tech netlist ~sizing:sizing_fn
            in
            let gain = sta.Sta.max_delay -. sta'.Sta.max_delay in
            revert saved;
            match !best with
            | Some (bg, _) when bg >= gain -> ()
            | _ -> if gain > 1e-6 then best := Some (gain, labels)
          end)
        candidates;
      match !best with
      | Some (_, labels) -> ignore (bump labels)
      | None -> stalled := true
    end
  done;
  (* Area-recovery sweep: walk labels widest-first and shrink any device
     the timing does not actually need — the "shave what you can" pass a
     designer runs once the path is closed. *)
  let recovery_reference =
    (Sta.analyze ~mode:Sta.Evaluate tech netlist ~sizing:sizing_fn).Sta.max_delay
  in
  (* Dynamic nodes are left alone during recovery: shaving a domino stack
     late in a project risks charge-sharing and keeper-fight failures, so
     designers do not. *)
  let domino_labels =
    Array.fold_left
      (fun acc (i : Netlist.instance) ->
        match i.Netlist.cell with
        | Cell.Domino _ ->
          List.fold_left (fun acc (l, _) -> l :: acc) acc (Cell.all_widths i.Netlist.cell)
        | Cell.Static _ | Cell.Passgate _ | Cell.Tristate _ -> acc)
      [] netlist.Netlist.instances
    |> List.sort_uniq String.compare
  in
  let improved = ref true in
  let sweeps = ref 0 in
  let domino_tbl = Hashtbl.create 16 in
  List.iter (fun l -> Hashtbl.replace domino_tbl l ()) domino_labels;
  while !improved && !sweeps < 10 do
    improved := false;
    incr sweeps;
    (* Designers shave the big devices, not every minimum-width gate: scan
       only labels meaningfully above minimum, widest first, and at most a
       few hundred of them (keeps the pass tractable on glue logic with
       per-gate labels). *)
    let by_width =
      List.sort
        (fun a b -> compare (sizing_fn b) (sizing_fn a))
        (List.filter
           (fun l ->
             (not (Hashtbl.mem domino_tbl l))
             && sizing_fn l > 1.5 *. tech.Tech.w_min)
           (Netlist.labels netlist))
      |> List.filteri (fun i _ -> i < 300)
    in
    List.iter
      (fun l ->
        let w = sizing_fn l in
        let w' = Float.max tech.Tech.w_min (w /. params.step) in
        if w' < w then begin
          Hashtbl.replace widths l w';
          let sta = Sta.analyze ~mode:Sta.Evaluate tech netlist ~sizing:sizing_fn in
          if sta.Sta.max_delay <= recovery_reference +. 0.1 then improved := true
          else Hashtbl.replace widths l w
        end)
      by_width
  done;
  (* Clock devices by designer rule of thumb: the evaluate foot carries
     every leg's current (1.5x the pull-down width), the precharge device
     merely has to win its half-cycle (0.75x). *)
  Array.iter
    (fun (i : Netlist.instance) ->
      match i.Netlist.cell with
      | Cell.Domino { pull_down; precharge; eval; _ } ->
        let w_pdn =
          List.fold_left
            (fun acc (l, _) -> Float.max acc (sizing_fn l))
            tech.Tech.w_min
            (Smart_circuit.Pdn.widths pull_down)
        in
        let want l w = if w > sizing_fn l then Hashtbl.replace widths l (clamp tech w) in
        (match eval with Some f -> want f (2.0 *. w_pdn) | None -> ());
        want precharge (1.0 *. w_pdn)
      | Cell.Static _ | Cell.Passgate _ | Cell.Tristate _ -> ())
    netlist.Netlist.instances;
  (* Conservative margin, then snap up to the layout grid. *)
  Hashtbl.iter
    (fun l w ->
      Hashtbl.replace widths l
        (clamp tech (round_up_to_grid params.grid (w *. params.margin))))
    widths;
  (* Uniform clock-device sizing across the macro. *)
  if params.uniform_clock then begin
    let clocked =
      Array.fold_left
        (fun acc (i : Netlist.instance) ->
          List.fold_left
            (fun acc (l, _) -> l :: acc)
            acc
            (Cell.clocked_widths i.Netlist.cell))
        [] netlist.Netlist.instances
      |> List.sort_uniq String.compare
    in
    match clocked with
    | [] -> ()
    | _ ->
      let biggest =
        List.fold_left (fun acc l -> Float.max acc (sizing_fn l)) 0. clocked
      in
      List.iter (fun l -> Hashtbl.replace widths l biggest) clocked
  end;
  let sizing = List.map (fun l -> (l, sizing_fn l)) (Netlist.labels netlist) in
  let eval_sta = Sta.analyze ~mode:Sta.Evaluate tech netlist ~sizing:sizing_fn in
  let pre_sta = Sta.analyze ~mode:Sta.Precharge tech netlist ~sizing:sizing_fn in
  {
    sizing;
    sizing_fn;
    achieved_delay = eval_sta.Sta.max_delay;
    precharge_delay = pre_sta.Sta.max_delay;
    total_width = Netlist.total_width netlist sizing_fn;
    clock_load_width = Netlist.clock_load_width netlist sizing_fn;
    rounds = !rounds;
    met_target = !met;
  }
