test/test_linalg.ml: Alcotest Array Float List QCheck QCheck_alcotest Smart_linalg Smart_util
