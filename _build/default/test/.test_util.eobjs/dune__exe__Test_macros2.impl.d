test/test_macros2.ml: Alcotest Array List Printf Smart_circuit Smart_constraints Smart_macros Smart_sim Smart_sizer Smart_tech Smart_util
