test/test_sta.ml: Alcotest Array Float List Printf Smart_circuit Smart_models Smart_sta Smart_tech
