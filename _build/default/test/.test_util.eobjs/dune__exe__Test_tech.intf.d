test/test_tech.mli:
