test/test_constraints.mli:
