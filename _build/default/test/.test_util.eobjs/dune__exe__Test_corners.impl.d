test/test_corners.ml: Alcotest List Smart_core
