test/test_corners.mli:
