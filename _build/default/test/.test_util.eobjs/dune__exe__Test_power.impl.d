test/test_power.ml: Alcotest Smart_circuit Smart_macros Smart_power Smart_tech
