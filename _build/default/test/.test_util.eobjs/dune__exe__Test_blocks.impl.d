test/test_blocks.ml: Alcotest List Smart_blocks Smart_circuit Smart_macros Smart_tech
