test/test_gp.ml: Alcotest List Printf QCheck QCheck_alcotest Smart_gp Smart_posy Smart_util
