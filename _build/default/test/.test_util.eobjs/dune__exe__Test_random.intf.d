test/test_random.mli:
