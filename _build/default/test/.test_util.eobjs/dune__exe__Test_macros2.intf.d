test/test_macros2.mli:
