test/test_database.mli:
