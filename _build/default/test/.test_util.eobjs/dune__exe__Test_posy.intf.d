test/test_posy.mli:
