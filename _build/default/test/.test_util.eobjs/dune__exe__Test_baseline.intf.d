test/test_baseline.mli:
