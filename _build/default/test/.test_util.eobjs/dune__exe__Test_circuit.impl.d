test/test_circuit.ml: Alcotest List Smart_circuit Smart_util String
