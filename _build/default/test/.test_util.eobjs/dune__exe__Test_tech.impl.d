test/test_tech.ml: Alcotest Smart_tech String
