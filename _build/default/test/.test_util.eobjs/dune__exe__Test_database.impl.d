test/test_database.ml: Alcotest List Smart_circuit Smart_database Smart_macros
