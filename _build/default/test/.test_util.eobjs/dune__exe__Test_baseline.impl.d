test/test_baseline.ml: Alcotest Array Float List Smart_baseline Smart_circuit Smart_macros Smart_sta Smart_tech String
