test/test_spice.ml: Alcotest List Smart_circuit Smart_macros String
