test/test_sizer.ml: Alcotest List Printf Smart_circuit Smart_constraints Smart_macros Smart_sim Smart_sizer Smart_sta Smart_tech
