test/test_paths.ml: Alcotest Array List Printf QCheck QCheck_alcotest Smart_circuit Smart_macros Smart_paths Smart_util
