test/test_random.ml: Alcotest List Printf QCheck QCheck_alcotest Smart_baseline Smart_blocks Smart_circuit Smart_macros Smart_paths Smart_power Smart_sta Smart_tech Smart_util
