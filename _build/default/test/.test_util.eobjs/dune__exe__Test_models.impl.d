test/test_models.ml: Alcotest List Printf Smart_circuit Smart_models Smart_posy Smart_tech Smart_util String
