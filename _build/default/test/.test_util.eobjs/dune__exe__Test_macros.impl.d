test/test_macros.ml: Alcotest List Printf QCheck QCheck_alcotest Smart_circuit Smart_macros Smart_sim Smart_util String
