test/test_constraints.ml: Alcotest List Smart_circuit Smart_constraints Smart_gp Smart_macros Smart_paths Smart_posy Smart_tech String
