test/test_blocks.mli:
