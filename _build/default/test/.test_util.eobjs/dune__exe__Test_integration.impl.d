test/test_integration.ml: Alcotest List Printf Smart_baseline Smart_core String
