test/test_sim.ml: Alcotest List Smart_circuit Smart_sim
