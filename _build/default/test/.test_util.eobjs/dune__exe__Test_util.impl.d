test/test_util.ml: Alcotest Array List Smart_util String
