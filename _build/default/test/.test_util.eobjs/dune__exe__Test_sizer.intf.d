test/test_sizer.mli:
