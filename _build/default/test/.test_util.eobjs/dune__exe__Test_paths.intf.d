test/test_paths.mli:
