test/test_posy.ml: Alcotest Array List Printf QCheck QCheck_alcotest Smart_linalg Smart_posy Smart_util String
