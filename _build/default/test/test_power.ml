(* Unit tests: Smart_power (PowerMill stand-in). *)

module Power = Smart_power.Power
module Cell = Smart_circuit.Cell
module B = Smart_circuit.Netlist.Builder
module Mux = Smart_macros.Mux
module Macro = Smart_macros.Macro
module Tech = Smart_tech.Tech

let tech = Tech.default
let checkb msg = Alcotest.(check bool) msg

let static_pair () =
  let b = B.create "p2" in
  let i = B.input b "in" in
  let w = B.wire b "w" in
  let o = B.output b "out" in
  B.inst b ~name:"g1" ~cell:(Cell.inverter ~p:"P1" ~n:"N1") ~inputs:[ ("a", i) ] ~out:w ();
  B.inst b ~name:"g2" ~cell:(Cell.inverter ~p:"P2" ~n:"N2") ~inputs:[ ("a", w) ] ~out:o ();
  B.ext_load b o 30.;
  B.freeze b

let test_static_has_no_clock_power () =
  let r = Power.estimate tech (static_pair ()) ~sizing:(fun _ -> 2.) in
  Alcotest.(check (float 1e-9)) "no clocked width" 0. r.Power.clock_load_width;
  Alcotest.(check (float 1e-9)) "no domino power" 0. r.Power.domino_internal_uw;
  checkb "switching positive" true (r.Power.switching_uw > 0.);
  checkb "total = parts" true
    (abs_float (r.Power.total_uw -. (r.Power.switching_uw +. r.Power.clock_uw
                                     +. r.Power.domino_internal_uw)) < 1e-9)

let test_monotone_in_width () =
  let nl = static_pair () in
  let thin = Power.estimate tech nl ~sizing:(fun _ -> 1.) in
  let wide = Power.estimate tech nl ~sizing:(fun _ -> 4.) in
  checkb "wider burns more" true (wide.Power.total_uw > thin.Power.total_uw)

let test_activity_scaling () =
  let nl = static_pair () in
  let low = Power.estimate ~activity:0.1 tech nl ~sizing:(fun _ -> 2.) in
  let high = Power.estimate ~activity:0.5 tech nl ~sizing:(fun _ -> 2.) in
  checkb "higher activity, more switching" true
    (high.Power.switching_uw > 4. *. low.Power.switching_uw *. 0.99)

let test_domino_clock_power () =
  let info = Mux.generate Mux.Domino_unsplit ~n:8 in
  let r = Power.estimate tech info.Macro.netlist ~sizing:(fun _ -> 2.) in
  checkb "clock power positive" true (r.Power.clock_uw > 0.);
  checkb "domino internal positive" true (r.Power.domino_internal_uw > 0.);
  checkb "clock width positive" true (r.Power.clock_load_width > 0.)

let test_frequency_scaling () =
  let nl = static_pair () in
  let at1 = Power.estimate tech nl ~sizing:(fun _ -> 2.) in
  let at2 =
    Power.estimate (Tech.{ tech with freq_ghz = 2. }) nl ~sizing:(fun _ -> 2.)
  in
  checkb "power scales with frequency" true
    (abs_float (at2.Power.total_uw -. (2. *. at1.Power.total_uw)) < 1e-6)

let test_per_net_activities () =
  let nl = static_pair () in
  let base = Power.estimate tech nl ~sizing:(fun _ -> 2.) in
  (* Quiet input: strictly less switching power. *)
  let quiet =
    Power.estimate ~activities:[ ("in", 0.01) ] tech nl ~sizing:(fun _ -> 2.)
  in
  checkb "quiet net lowers power" true
    (quiet.Power.switching_uw < base.Power.switching_uw);
  (* Override matching the default changes nothing. *)
  let same =
    Power.estimate ~activities:[ ("in", 0.25) ] tech nl ~sizing:(fun _ -> 2.)
  in
  Alcotest.(check (float 1e-9)) "neutral override" base.Power.switching_uw
    same.Power.switching_uw

let test_saving_formula () =
  let nl = static_pair () in
  let a = Power.estimate tech nl ~sizing:(fun _ -> 4.) in
  let b = Power.estimate tech nl ~sizing:(fun _ -> 2.) in
  let s = Power.saving ~original:a ~improved:b in
  checkb "saving positive and < 100" true (s > 0. && s < 100.)

let () =
  Alcotest.run "smart_power"
    [
      ( "estimates",
        [
          Alcotest.test_case "static has no clock term" `Quick test_static_has_no_clock_power;
          Alcotest.test_case "monotone in width" `Quick test_monotone_in_width;
          Alcotest.test_case "activity scaling" `Quick test_activity_scaling;
          Alcotest.test_case "domino clock power" `Quick test_domino_clock_power;
          Alcotest.test_case "frequency scaling" `Quick test_frequency_scaling;
          Alcotest.test_case "per-net activities" `Quick test_per_net_activities;
          Alcotest.test_case "saving" `Quick test_saving_formula;
        ] );
    ]
