(* Functional verification of every macro generator against its arithmetic
   specification, via the switch-level simulator — plus structural checks
   (label regularity, device counts, validation). *)

module Macro = Smart_macros.Macro
module Mux = Smart_macros.Mux
module Inc = Smart_macros.Incrementor
module Zd = Smart_macros.Zero_detect
module Dec = Smart_macros.Decoder
module Cmp = Smart_macros.Comparator
module Cla = Smart_macros.Cla_adder
module N = Smart_circuit.Netlist
module Sim = Smart_sim.Sim
module Logic = Smart_sim.Logic
module Rng = Smart_util.Rng

let checkb msg = Alcotest.(check bool) msg
let checki msg = Alcotest.(check int) msg

let bit v i = (v lsr i) land 1 = 1

let bus base n v = List.init n (fun i -> (Printf.sprintf "%s%d" base i, bit v i))

let dual_bus base n v =
  List.concat
    (List.init n (fun i ->
         [ (Printf.sprintf "%s%d" base i, bit v i);
           (Printf.sprintf "%sb%d" base i, not (bit v i)) ]))

let read_bus outs base n =
  List.fold_left
    (fun acc i ->
      match Logic.to_bool (List.assoc (Printf.sprintf "%s%d" base i) outs) with
      | Some true -> acc lor (1 lsl i)
      | Some false -> acc
      | None -> Alcotest.fail "X on output")
    0
    (List.init n (fun i -> i))

(* ---------------- muxes ---------------- *)

let mux_spec_ok topo n =
  let info = Mux.generate topo ~n in
  let nl = info.Macro.netlist in
  let ok = ref true in
  for sel = 0 to n - 1 do
    for v = 0 to (1 lsl n) - 1 do
      let sels =
        match topo with
        | Mux.Encoded_2to1 -> [ ("select", sel = 0) ]
        | Mux.Weakly_mutexed ->
          List.init (n - 1) (fun i -> (Printf.sprintf "s%d" i, i = sel))
        | _ -> List.init n (fun i -> (Printf.sprintf "s%d" i, i = sel))
      in
      let out = List.assoc "out" (Sim.eval_bits nl (bus "in" n v @ sels)) in
      if not (Logic.equal out (Logic.of_bool (bit v sel))) then ok := false
    done
  done;
  !ok

let test_mux_functional topo n () =
  checkb (Mux.topology_name topo) true (mux_spec_ok topo n)

let test_mux_validation () =
  List.iter
    (fun (topo, info) ->
      checki
        (Mux.topology_name topo ^ " validates")
        0
        (List.length (N.validate info.Macro.netlist)))
    (Mux.all_for ~n:4 ())

let test_mux_regularity () =
  (* Shared labels: an n-wide passgate mux uses a constant label count. *)
  let l8 = List.length (N.labels (Mux.generate Mux.Strongly_mutexed ~n:8).Macro.netlist) in
  let l16 = List.length (N.labels (Mux.generate Mux.Strongly_mutexed ~n:16).Macro.netlist) in
  checki "label count independent of width" l8 l16

let test_mux_errors () =
  checkb "encoded needs n=2" true
    (try ignore (Mux.generate Mux.Encoded_2to1 ~n:4); false
     with Smart_util.Err.Smart_error _ -> true);
  checkb "n>=2 enforced" true
    (try ignore (Mux.generate Mux.Strongly_mutexed ~n:1); false
     with Smart_util.Err.Smart_error _ -> true)

let test_mux_applicability () =
  checkb "strongly needs one-hot" false
    (Mux.applicable Mux.Strongly_mutexed ~n:4 ~strongly_mutexed_selects:false
       ~heavy_load:false);
  checkb "weakly always ok" true
    (Mux.applicable Mux.Weakly_mutexed ~n:4 ~strongly_mutexed_selects:false
       ~heavy_load:false);
  checkb "tristate wants heavy load" true
    (Mux.applicable Mux.Tristate_mux ~n:4 ~strongly_mutexed_selects:true
       ~heavy_load:true)

(* ---------------- incrementor / decrementor ---------------- *)

let test_inc_exhaustive bits dec () =
  let info = Inc.generate ~decrement:dec ~bits () in
  let nl = info.Macro.netlist in
  for v = 0 to (1 lsl bits) - 1 do
    let outs = Sim.eval_bits nl (bus "in" bits v) in
    checki
      (Printf.sprintf "%s %d of %d" (if dec then "dec" else "inc") v bits)
      (Inc.spec ~decrement:dec ~bits v)
      (read_bus outs "out" bits)
  done

let test_inc_random_wide () =
  let bits = 24 in
  let info = Inc.generate ~bits () in
  let nl = info.Macro.netlist in
  let rng = Rng.create 77 in
  for _ = 1 to 50 do
    let v = Rng.int rng (1 lsl bits) in
    let outs = Sim.eval_bits nl (bus "in" bits v) in
    checki "wide increment" (Inc.spec ~decrement:false ~bits v) (read_bus outs "out" bits)
  done

(* ---------------- zero detect ---------------- *)

let test_zero_detect_exhaustive bits () =
  let info = Zd.generate ~bits () in
  let nl = info.Macro.netlist in
  for v = 0 to (1 lsl bits) - 1 do
    let out = List.assoc "out" (Sim.eval_bits nl (bus "in" bits v)) in
    checkb (Printf.sprintf "zd %d" v) (Zd.spec ~bits v)
      (Logic.equal out Logic.V1)
  done

let test_zero_detect_odd_width () =
  (* Non-power-of-radix width exercises the lone-signal path. *)
  let info = Zd.generate ~bits:7 () in
  let nl = info.Macro.netlist in
  checkb "zero" true (Logic.equal (List.assoc "out" (Sim.eval_bits nl (bus "in" 7 0))) Logic.V1);
  checkb "nonzero" true
    (Logic.equal (List.assoc "out" (Sim.eval_bits nl (bus "in" 7 64))) Logic.V0)

(* ---------------- decoder ---------------- *)

let test_decoder_exhaustive in_bits () =
  let info = Dec.generate ~in_bits () in
  let nl = info.Macro.netlist in
  let n_out = 1 lsl in_bits in
  for v = 0 to n_out - 1 do
    let outs = Sim.eval_bits nl (bus "in" in_bits v) in
    for o = 0 to n_out - 1 do
      checkb
        (Printf.sprintf "dec %d out %d" v o)
        (o = v)
        (Logic.equal (List.assoc (Printf.sprintf "out%d" o) outs) Logic.V1)
    done
  done

let test_decoder_one_hot_count () =
  let info = Dec.generate ~in_bits:5 () in
  let nl = info.Macro.netlist in
  let outs = Sim.eval_bits nl (bus "in" 5 19) in
  let hot =
    List.length (List.filter (fun (_, v) -> Logic.equal v Logic.V1) outs)
  in
  checki "exactly one output high" 1 hot

(* ---------------- comparator ---------------- *)

let test_comparator_random ~xor_group ~or_radix () =
  let bits = 8 in
  let info = Cmp.generate ~xor_group ~or_radix ~bits () in
  let nl = info.Macro.netlist in
  let rng = Rng.create 99 in
  for _ = 1 to 150 do
    let a = Rng.int rng 256 in
    let b = if Rng.bool rng then a else Rng.int rng 256 in
    let outs = Sim.eval_bits nl (dual_bus "a" bits a @ dual_bus "b" bits b) in
    checkb "eq" (Cmp.spec ~a ~b) (Logic.equal (List.assoc "eq" outs) Logic.V1);
    checkb "neq" (a <> b) (Logic.equal (List.assoc "neq" outs) Logic.V1)
  done

let test_comparator_precharge () =
  let info = Cmp.generate ~bits:8 () in
  let outs =
    Sim.eval ~phase:Sim.Precharge info.Macro.netlist
      (List.map (fun (n, b) -> (n, Logic.of_bool b)) (dual_bus "a" 8 5 @ dual_bus "b" 8 9))
  in
  checkb "neq resets low" true (Logic.equal (List.assoc "neq" outs) Logic.V0)

(* ---------------- CLA adder ---------------- *)

let adder_case nl bits a b cin =
  let ins =
    dual_bus "a" bits a @ dual_bus "b" bits b
    @ [ ("cin", cin); ("cinb", not cin) ]
  in
  let outs = Sim.eval_bits nl ins in
  let sum = read_bus outs "s" bits in
  let cout = Logic.to_bool (List.assoc "cout" outs) = Some true in
  (sum, cout)

let test_adder_exhaustive_4 () =
  let bits = 4 in
  let info = Cla.generate ~bits () in
  let nl = info.Macro.netlist in
  for a = 0 to 15 do
    for b = 0 to 15 do
      List.iter
        (fun cin ->
          let sum, cout = adder_case nl bits a b cin in
          let es, ec = Cla.spec ~bits ~a ~b ~cin in
          checki "sum" es sum;
          checkb "cout" ec cout)
        [ false; true ]
    done
  done

let prop_adder_random bits count =
  QCheck.Test.make
    ~name:(Printf.sprintf "cla%d adds correctly" bits)
    ~count
    QCheck.(triple (int_range 0 ((1 lsl (min bits 28)) - 1))
              (int_range 0 ((1 lsl (min bits 28)) - 1)) bool)
    (fun (a, b, cin) ->
      let info = Cla.generate ~bits () in
      let sum, cout = adder_case info.Macro.netlist bits a b cin in
      let es, ec = Cla.spec ~bits ~a ~b ~cin in
      sum = es && cout = ec)

(* Regenerating the netlist per sample is slow; share one. *)
let shared_adder bits =
  let info = Cla.generate ~bits () in
  QCheck.Test.make
    ~name:(Printf.sprintf "cla%d adds correctly" bits)
    ~count:60
    QCheck.(triple (int_range 0 ((1 lsl (min bits 28)) - 1))
              (int_range 0 ((1 lsl (min bits 28)) - 1)) bool)
    (fun (a, b, cin) ->
      let sum, cout = adder_case info.Macro.netlist bits a b cin in
      let es, ec = Cla.spec ~bits ~a ~b ~cin in
      sum = es && cout = ec)

let test_adder_structure () =
  let info = Cla.generate ~bits:64 () in
  let nl = info.Macro.netlist in
  checki "validates" 0 (List.length (N.validate nl));
  checkb "device count in the thousands" true (N.device_count nl > 4000);
  checkb "bit-slice regularity keeps labels bounded" true
    (List.length (N.labels nl) < 120);
  checkb "dynamic" true info.Macro.dynamic

let test_adder_bad_width () =
  checkb "rejects non-multiple of 4" true
    (try ignore (Cla.generate ~bits:10 ()); false
     with Smart_util.Err.Smart_error _ -> true)

let test_macro_metadata () =
  let info = Inc.generate ~bits:5 () in
  checkb "name mentions width" true
    (String.length (Macro.name info) > 0 && info.Macro.bits = 5);
  checkb "static macro not dynamic" false info.Macro.dynamic

let () =
  ignore prop_adder_random;
  Alcotest.run "smart_macros"
    [
      ( "mux",
        [
          Alcotest.test_case "strongly mutexed 4" `Quick
            (test_mux_functional Mux.Strongly_mutexed 4);
          Alcotest.test_case "strongly mutexed 8" `Quick
            (test_mux_functional Mux.Strongly_mutexed 8);
          Alcotest.test_case "weakly mutexed 4" `Quick
            (test_mux_functional Mux.Weakly_mutexed 4);
          Alcotest.test_case "weakly mutexed 2" `Quick
            (test_mux_functional Mux.Weakly_mutexed 2);
          Alcotest.test_case "encoded 2:1" `Quick
            (test_mux_functional Mux.Encoded_2to1 2);
          Alcotest.test_case "tristate 4" `Quick
            (test_mux_functional Mux.Tristate_mux 4);
          Alcotest.test_case "unsplit domino 4" `Quick
            (test_mux_functional Mux.Domino_unsplit 4);
          Alcotest.test_case "partitioned domino 5 (uneven)" `Quick
            (test_mux_functional (Mux.Domino_partitioned None) 5);
          Alcotest.test_case "partitioned domino custom m" `Quick
            (test_mux_functional (Mux.Domino_partitioned (Some 3)) 8);
          Alcotest.test_case "all validate" `Quick test_mux_validation;
          Alcotest.test_case "label regularity" `Quick test_mux_regularity;
          Alcotest.test_case "errors" `Quick test_mux_errors;
          Alcotest.test_case "applicability" `Quick test_mux_applicability;
        ] );
      ( "incrementor",
        [
          Alcotest.test_case "inc 5 exhaustive" `Quick (test_inc_exhaustive 5 false);
          Alcotest.test_case "dec 5 exhaustive" `Quick (test_inc_exhaustive 5 true);
          Alcotest.test_case "inc 6 exhaustive" `Quick (test_inc_exhaustive 6 false);
          Alcotest.test_case "inc 24 random" `Quick test_inc_random_wide;
        ] );
      ( "zero-detect",
        [
          Alcotest.test_case "6-bit exhaustive" `Quick (test_zero_detect_exhaustive 6);
          Alcotest.test_case "9-bit exhaustive" `Quick (test_zero_detect_exhaustive 9);
          Alcotest.test_case "odd width" `Quick test_zero_detect_odd_width;
        ] );
      ( "decoder",
        [
          Alcotest.test_case "3to8 exhaustive" `Quick (test_decoder_exhaustive 3);
          Alcotest.test_case "4to16 exhaustive" `Quick (test_decoder_exhaustive 4);
          Alcotest.test_case "5to32 one-hot" `Quick test_decoder_one_hot_count;
        ] );
      ( "comparator",
        [
          Alcotest.test_case "xorsum2/or4" `Quick (test_comparator_random ~xor_group:2 ~or_radix:4);
          Alcotest.test_case "xorsum1/or8" `Quick (test_comparator_random ~xor_group:1 ~or_radix:8);
          Alcotest.test_case "xorsum4/or4" `Quick (test_comparator_random ~xor_group:4 ~or_radix:4);
          Alcotest.test_case "precharge resets" `Quick test_comparator_precharge;
        ] );
      ( "adder",
        [
          Alcotest.test_case "4-bit exhaustive" `Quick test_adder_exhaustive_4;
          QCheck_alcotest.to_alcotest (shared_adder 16);
          QCheck_alcotest.to_alcotest (shared_adder 28);
          Alcotest.test_case "64-bit structure" `Quick test_adder_structure;
          Alcotest.test_case "width validation" `Quick test_adder_bad_width;
          Alcotest.test_case "metadata" `Quick test_macro_metadata;
        ] );
    ]
