(* Unit tests: Smart_sim (four-valued logic, switch-level evaluation). *)

module Logic = Smart_sim.Logic
module Sim = Smart_sim.Sim
module Cell = Smart_circuit.Cell
module Pdn = Smart_circuit.Pdn
module B = Smart_circuit.Netlist.Builder

let checkb msg = Alcotest.(check bool) msg
let v = Alcotest.testable (fun ppf x -> Logic.pp ppf x) Logic.equal
let checkv msg = Alcotest.check v msg

let test_logic_resolution () =
  checkv "Z yields" Logic.V1 (Logic.resolve Logic.Z Logic.V1);
  checkv "Z yields (sym)" Logic.V0 (Logic.resolve Logic.V0 Logic.Z);
  checkv "conflict" Logic.X (Logic.resolve Logic.V0 Logic.V1);
  checkv "agreement" Logic.V1 (Logic.resolve Logic.V1 Logic.V1);
  checkv "not" Logic.V0 (Logic.lnot Logic.V1);
  checkv "not X" Logic.X (Logic.lnot Logic.X);
  checkb "to_bool V1" true (Logic.to_bool Logic.V1 = Some true);
  checkb "to_bool Z" true (Logic.to_bool Logic.Z = None)

(* One-gate netlist helper. *)
let single cell pins =
  let b = B.create "single" in
  let nets = List.map (fun p -> (p, B.input b p)) pins in
  let o = B.output b "out" in
  B.inst b ~name:"g" ~cell ~inputs:nets ~out:o ();
  B.freeze b

let eval_out nl ins = List.assoc "out" (Sim.eval_bits nl ins)

let test_inverter_truth () =
  let nl = single (Cell.inverter ~p:"P" ~n:"N") [ "a" ] in
  checkv "inv 0" Logic.V1 (eval_out nl [ ("a", false) ]);
  checkv "inv 1" Logic.V0 (eval_out nl [ ("a", true) ])

let test_nand_truth () =
  let nl = single (Cell.nand ~inputs:2 ~p:"P" ~n:"N") [ "a0"; "a1" ] in
  List.iter
    (fun (a, b, expect) ->
      checkv "nand" (Logic.of_bool expect) (eval_out nl [ ("a0", a); ("a1", b) ]))
    [ (false, false, true); (false, true, true); (true, false, true); (true, true, false) ]

let test_nor_truth () =
  let nl = single (Cell.nor ~inputs:2 ~p:"P" ~n:"N") [ "a0"; "a1" ] in
  List.iter
    (fun (a, b, expect) ->
      checkv "nor" (Logic.of_bool expect) (eval_out nl [ ("a0", a); ("a1", b) ]))
    [ (false, false, true); (false, true, false); (true, false, false); (true, true, false) ]

let test_aoi21_truth () =
  let nl = single (Cell.aoi21 ~p:"P" ~n:"N") [ "a0"; "a1"; "b" ] in
  List.iter
    (fun (a0, a1, bb) ->
      let expect = not ((a0 && a1) || bb) in
      checkv "aoi21" (Logic.of_bool expect)
        (eval_out nl [ ("a0", a0); ("a1", a1); ("b", bb) ]))
    [ (false, false, false); (true, true, false); (false, false, true);
      (true, false, false); (true, false, true); (true, true, true) ]

let test_unknown_propagation () =
  let nl = single (Cell.nand ~inputs:2 ~p:"P" ~n:"N") [ "a0"; "a1" ] in
  (* a0 = 0 controls the NAND: output 1 even with a1 unknown. *)
  checkv "controlling value wins" Logic.V1
    (List.assoc "out" (Sim.eval nl [ ("a0", Logic.V0) ]));
  (* a0 = 1 leaves the output depending on unknown a1. *)
  checkv "unknown propagates" Logic.X
    (List.assoc "out" (Sim.eval nl [ ("a0", Logic.V1) ]))

let test_passgate_z () =
  let nl =
    single (Cell.Passgate { style = Cell.N_only; label = "N" }) [ "d"; "s" ]
  in
  checkv "on passes" Logic.V1 (eval_out nl [ ("d", true); ("s", true) ]);
  checkv "off floats" Logic.Z (eval_out nl [ ("d", true); ("s", false) ])

let test_pass_mux_resolution () =
  (* Two pass gates share a node; exactly one conducts. *)
  let b = B.create "pm" in
  let d0 = B.input b "d0" and d1 = B.input b "d1" in
  let s = B.input b "s" in
  let o = B.output b "out" in
  B.inst b ~name:"p0" ~cell:(Cell.Passgate { style = Cell.N_only; label = "N" })
    ~inputs:[ ("d", d0); ("s", s) ] ~out:o ();
  B.inst b ~name:"p1" ~cell:(Cell.Passgate { style = Cell.P_only; label = "N" })
    ~inputs:[ ("d", d1); ("s", s) ] ~out:o ();
  let nl = B.freeze b in
  checkv "select high picks d0" Logic.V1
    (eval_out nl [ ("d0", true); ("d1", false); ("s", true) ]);
  checkv "select low picks d1" Logic.V0
    (eval_out nl [ ("d0", true); ("d1", false); ("s", false) ])

let test_tristate () =
  let nl = single (Cell.Tristate { p_label = "P"; n_label = "N" }) [ "d"; "en" ] in
  checkv "enabled inverts" Logic.V0 (eval_out nl [ ("d", true); ("en", true) ]);
  checkv "disabled floats" Logic.Z (eval_out nl [ ("d", true); ("en", false) ])

let domino_or2 () =
  single
    (Cell.Domino
       {
         gate_name = "or2";
         pull_down = Pdn.parallel [ Pdn.leaf ~pin:"a" ~label:"N1"; Pdn.leaf ~pin:"b" ~label:"N1" ];
         precharge = "P1";
         eval = Some "N2";
         out_p = "P3";
         out_n = "N3";
         keeper = true;
       })
    [ "a"; "b" ]

let test_domino_phases () =
  let nl = domino_or2 () in
  (* Precharge: output forced low regardless of inputs. *)
  checkv "precharge low" Logic.V0
    (List.assoc "out" (Sim.eval ~phase:Sim.Precharge nl [ ("a", Logic.V1) ]));
  (* Evaluate: OR of inputs. *)
  checkv "evaluate 1" Logic.V1 (eval_out nl [ ("a", true); ("b", false) ]);
  checkv "evaluate 0" Logic.V0 (eval_out nl [ ("a", false); ("b", false) ])

let test_eval_net_by_name () =
  let nl = domino_or2 () in
  checkv "by name" Logic.V1
    (Sim.eval_net nl [ ("a", Logic.V1); ("b", Logic.V0) ] "out")

let () =
  Alcotest.run "smart_sim"
    [
      ( "logic",
        [ Alcotest.test_case "resolution" `Quick test_logic_resolution ] );
      ( "gates",
        [
          Alcotest.test_case "inverter" `Quick test_inverter_truth;
          Alcotest.test_case "nand" `Quick test_nand_truth;
          Alcotest.test_case "nor" `Quick test_nor_truth;
          Alcotest.test_case "aoi21" `Quick test_aoi21_truth;
          Alcotest.test_case "unknowns" `Quick test_unknown_propagation;
        ] );
      ( "switches",
        [
          Alcotest.test_case "passgate Z" `Quick test_passgate_z;
          Alcotest.test_case "pass mux resolution" `Quick test_pass_mux_resolution;
          Alcotest.test_case "tristate" `Quick test_tristate;
        ] );
      ( "domino",
        [
          Alcotest.test_case "phases" `Quick test_domino_phases;
          Alcotest.test_case "eval_net" `Quick test_eval_net_by_name;
        ] );
    ]
