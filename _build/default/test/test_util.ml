(* Unit tests: Smart_util (rng, stats, tables, errors). *)

module Rng = Smart_util.Rng
module Stats = Smart_util.Stats
module Tab = Smart_util.Tab
module Err = Smart_util.Err

let check = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  check "different seeds differ" true (Rng.int64 a <> Rng.int64 b)

let test_rng_int_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int r 17 in
    check "in range" true (x >= 0 && x < 17)
  done

let test_rng_int_rejects_nonpositive () =
  let r = Rng.create 7 in
  Alcotest.check_raises "bound 0"
    (Err.Smart_error "Rng.int: bound 0 must be positive") (fun () ->
      ignore (Rng.int r 0))

let test_rng_float_bounds () =
  let r = Rng.create 9 in
  for _ = 1 to 1000 do
    let x = Rng.float r 3.5 in
    check "in range" true (x >= 0. && x < 3.5)
  done

let test_rng_uniform () =
  let r = Rng.create 5 in
  for _ = 1 to 200 do
    let x = Rng.uniform r 2. 5. in
    check "in [2,5)" true (x >= 2. && x < 5.)
  done

let test_rng_split_independent () =
  let parent = Rng.create 3 in
  let child = Rng.split parent in
  let a = Rng.int64 parent and b = Rng.int64 child in
  check "split streams differ" true (a <> b)

let test_rng_copy () =
  let a = Rng.create 11 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.int64 a) (Rng.int64 b)

let test_rng_choose () =
  let r = Rng.create 13 in
  let arr = [| 1; 2; 3 |] in
  for _ = 1 to 100 do
    check "chosen from array" true (Array.mem (Rng.choose r arr) arr)
  done

let test_rng_shuffle_permutation () =
  let r = Rng.create 17 in
  let arr = Array.init 20 (fun i -> i) in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 (fun i -> i)) sorted

let test_stats_mean () =
  checkf "mean" 2. (Stats.mean [ 1.; 2.; 3. ]);
  checkf "empty mean" 0. (Stats.mean [])

let test_stats_geomean () =
  Alcotest.(check (float 1e-9)) "geomean" 2. (Stats.geomean [ 1.; 2.; 4. ]);
  Alcotest.(check (float 1e-9)) "geomean of equal" 3. (Stats.geomean [ 3.; 3.; 3. ])

let test_stats_stddev () =
  checkf "stddev of constants" 0. (Stats.stddev [ 5.; 5.; 5. ]);
  checkf "stddev of 1,3 pairs" 1. (Stats.stddev [ 1.; 3.; 1.; 3.; 1.; 3.; 1.; 3. ])

let test_stats_minmax () =
  checkf "min" 1. (Stats.minimum [ 3.; 1.; 2. ]);
  checkf "max" 3. (Stats.maximum [ 3.; 1.; 2. ]);
  Alcotest.check_raises "empty min"
    (Err.Smart_error "Stats.minimum: empty list") (fun () ->
      ignore (Stats.minimum []))

let test_stats_savings () =
  checkf "percent saving" 25. (Stats.percent_saving ~original:100. ~improved:75.);
  checkf "ratio" 0.75 (Stats.ratio ~original:100. ~improved:75.)

let test_tab_render () =
  let t = Tab.create [ "a"; "bb" ] in
  Tab.row t [ "1"; "2" ];
  Tab.rowf t "%d|%s" 10 "xy";
  let s = Tab.to_string t in
  check "contains header" true (String.length s > 0);
  check "row count" true (List.length (String.split_on_char '\n' s) = 4)

let test_tab_arity_checked () =
  let t = Tab.create [ "a"; "b" ] in
  Alcotest.check_raises "bad arity"
    (Err.Smart_error "Tab.row: 1 cells for 2 headers") (fun () ->
      Tab.row t [ "only" ])

let test_err_fail () =
  Alcotest.check_raises "formatted" (Err.Smart_error "x=3") (fun () ->
      Err.fail "x=%d" 3)

let test_err_conditional () =
  Err.invalid_arg_if false "never";
  Alcotest.check_raises "fires" (Err.Smart_error "yes") (fun () ->
      Err.invalid_arg_if true "yes")

let () =
  Alcotest.run "smart_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int rejects <= 0" `Quick test_rng_int_rejects_nonpositive;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "uniform range" `Quick test_rng_uniform;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "choose" `Quick test_rng_choose;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutation;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "geomean" `Quick test_stats_geomean;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "min/max" `Quick test_stats_minmax;
          Alcotest.test_case "savings" `Quick test_stats_savings;
        ] );
      ( "tab",
        [
          Alcotest.test_case "render" `Quick test_tab_render;
          Alcotest.test_case "arity" `Quick test_tab_arity_checked;
        ] );
      ( "err",
        [
          Alcotest.test_case "fail" `Quick test_err_fail;
          Alcotest.test_case "conditional" `Quick test_err_conditional;
        ] );
    ]
