(* Unit tests: Smart_sta (golden static timing analysis). *)

module Sta = Smart_sta.Sta
module Cell = Smart_circuit.Cell
module Pdn = Smart_circuit.Pdn
module N = Smart_circuit.Netlist
module B = Smart_circuit.Netlist.Builder
module Golden = Smart_models.Golden
module Load = Smart_models.Load
module Tech = Smart_tech.Tech

let tech = Tech.default
let checkb msg = Alcotest.(check bool) msg
let checkf tol msg = Alcotest.(check (float tol)) msg

let chain n_stages ~load =
  let b = B.create "chain" in
  let i = B.input b "in" in
  let rec build k prev =
    if k = n_stages then prev
    else begin
      let next =
        if k = n_stages - 1 then B.output b "out" else B.wire b (Printf.sprintf "w%d" k)
      in
      B.inst b ~name:(Printf.sprintf "g%d" k)
        ~cell:(Cell.inverter ~p:(Printf.sprintf "P%d" k) ~n:(Printf.sprintf "N%d" k))
        ~inputs:[ ("a", prev) ] ~out:next ();
      build (k + 1) next
    end
  in
  let out = build 0 i in
  B.ext_load b out load;
  B.freeze b

let test_single_stage_matches_golden () =
  (* One inverter: STA arrival must equal the golden arc delay exactly. *)
  let nl = chain 1 ~load:30. in
  let sizing _ = 2. in
  let sta = Sta.analyze tech nl ~sizing in
  let loads = Load.make tech nl in
  let out = N.find_net nl "out" in
  let load = Load.numeric loads sizing out in
  let cell = Cell.inverter ~p:"P0" ~n:"N0" in
  let d_rise, _ =
    Golden.arc_delay tech ~sizing cell ~pin:"a" ~out_sense:Smart_models.Arc.Rise
      ~load ~in_slope:tech.Tech.default_input_slope
  in
  let d_fall, _ =
    Golden.arc_delay tech ~sizing cell ~pin:"a" ~out_sense:Smart_models.Arc.Fall
      ~load ~in_slope:tech.Tech.default_input_slope
  in
  checkf 1e-6 "max delay = worst arc" (Float.max d_rise d_fall) sta.Sta.max_delay

let test_chain_additivity () =
  (* Arrival grows monotonically along a chain; 4 stages are slower than 2. *)
  let sizing _ = 2. in
  let d2 = (Sta.analyze tech (chain 2 ~load:30.) ~sizing).Sta.max_delay in
  let d4 = (Sta.analyze tech (chain 4 ~load:30.) ~sizing).Sta.max_delay in
  checkb "4 stages slower than 2" true (d4 > d2 +. 5.)

let test_wider_is_faster () =
  let nl = chain 3 ~load:60. in
  let d_thin = (Sta.analyze tech nl ~sizing:(fun _ -> 0.8)).Sta.max_delay in
  let d_wide = (Sta.analyze tech nl ~sizing:(fun _ -> 6.)).Sta.max_delay in
  checkb "wider is faster into fixed load" true (d_wide < d_thin)

let test_critical_path_structure () =
  let nl = chain 3 ~load:20. in
  let sta = Sta.analyze tech nl ~sizing:(fun _ -> 2.) in
  let path = Sta.critical_path sta nl in
  Alcotest.(check (list string)) "full chain"
    [ "g0"; "g1"; "g2" ]
    (List.map (fun ((i : N.instance), _) -> i.N.inst_name) path);
  checkb "critical output named" true (sta.Sta.critical_output = Some "out")

let test_worst_pin_selection () =
  (* NAND2 with one late input: output timed from the later pin. *)
  let b = B.create "worst" in
  let early = B.input b "early" in
  let late0 = B.input b "late" in
  let w = B.wire b "w" in
  (* Delay the late input through two inverters. *)
  let w2 = B.wire b "w2" in
  B.inst b ~name:"d0" ~cell:(Cell.inverter ~p:"Pd" ~n:"Nd") ~inputs:[ ("a", late0) ] ~out:w ();
  B.inst b ~name:"d1" ~cell:(Cell.inverter ~p:"Pd2" ~n:"Nd2") ~inputs:[ ("a", w) ] ~out:w2 ();
  let o = B.output b "out" in
  B.inst b ~name:"g" ~cell:(Cell.nand ~inputs:2 ~p:"P" ~n:"N")
    ~inputs:[ ("a0", early); ("a1", w2) ] ~out:o ();
  B.ext_load b o 10.;
  let nl = B.freeze b in
  let sta = Sta.analyze tech nl ~sizing:(fun _ -> 2.) in
  let path = Sta.critical_path sta nl in
  checkb "critical path goes through the late pin" true
    (List.exists (fun ((i : N.instance), pin) -> i.N.inst_name = "g" && pin = "a1") path)

let domino_pair () =
  (* D1 stage feeding a D2 stage. *)
  let b = B.create "dompair" in
  let i = B.input b "in" in
  let w = B.wire b "w" in
  let o = B.output b "out" in
  let dom name ~footed input out p =
    B.inst b ~name
      ~cell:
        (Cell.Domino
           {
             gate_name = name;
             pull_down = Pdn.leaf ~pin:"a" ~label:(p ^ ".N");
             precharge = p ^ ".P";
             eval = (if footed then Some (p ^ ".F") else None);
             out_p = p ^ ".IP";
             out_n = p ^ ".IN";
             keeper = false;
           })
      ~inputs:[ ("a", input) ] ~out ()
  in
  dom "d1" ~footed:true i w "s1";
  dom "d2" ~footed:false w o "s2";
  B.ext_load b o 15.;
  B.freeze b

let test_domino_evaluate_mode () =
  let nl = domino_pair () in
  let sta = Sta.analyze ~mode:Sta.Evaluate tech nl ~sizing:(fun _ -> 2.) in
  checkb "evaluate propagates" true (sta.Sta.max_delay > 0.);
  (* Output only rises during evaluate (monotone domino). *)
  let o = N.find_net nl "out" in
  let nt = sta.Sta.nets.(o) in
  checkb "rise reached" true (nt.Sta.arr_rise > 0.);
  checkb "fall unreachable in evaluate" true (nt.Sta.arr_fall = neg_infinity)

let test_domino_precharge_mode () =
  let nl = domino_pair () in
  let sta = Sta.analyze ~mode:Sta.Precharge tech nl ~sizing:(fun _ -> 2.) in
  checkb "precharge reaches output" true (sta.Sta.max_delay > 0.);
  let o = N.find_net nl "out" in
  let nt = sta.Sta.nets.(o) in
  checkb "output falls on precharge" true (nt.Sta.arr_fall > 0.)

let test_static_circuit_quiet_in_precharge () =
  let nl = chain 2 ~load:10. in
  let sta = Sta.analyze ~mode:Sta.Precharge tech nl ~sizing:(fun _ -> 2.) in
  checkf 1e-9 "nothing moves" 0. sta.Sta.max_delay

let test_slope_violation_reported () =
  (* A minimum-width driver into a huge load produces a slope violation. *)
  let b = B.create "slow" in
  let i = B.input b "in" in
  let o = B.output b "out" in
  B.inst b ~name:"g" ~cell:(Cell.inverter ~p:"P" ~n:"N") ~inputs:[ ("a", i) ] ~out:o ();
  B.ext_load b o 500.;
  let nl = B.freeze b in
  let sta = Sta.analyze tech nl ~sizing:(fun _ -> tech.Tech.w_min) in
  checkb "violation found" true (List.length sta.Sta.slope_violations > 0);
  checkb "max slope over cap" true (sta.Sta.max_slope > tech.Tech.slope_max)

let test_group_delays () =
  let nl = domino_pair () in
  let sta = Sta.analyze tech nl ~sizing:(fun _ -> 2.) in
  checkb "groups reported" true (List.length sta.Sta.group_delays >= 1)

let test_evaluate_and_precharge () =
  let nl = domino_pair () in
  let ev, pre = Sta.evaluate_and_precharge tech nl ~sizing:(fun _ -> 2.) in
  checkb "modes differ" true (ev.Sta.mode = Sta.Evaluate && pre.Sta.mode = Sta.Precharge)

let () =
  Alcotest.run "smart_sta"
    [
      ( "static",
        [
          Alcotest.test_case "single stage exact" `Quick test_single_stage_matches_golden;
          Alcotest.test_case "chain additivity" `Quick test_chain_additivity;
          Alcotest.test_case "wider is faster" `Quick test_wider_is_faster;
          Alcotest.test_case "critical path" `Quick test_critical_path_structure;
          Alcotest.test_case "worst pin" `Quick test_worst_pin_selection;
        ] );
      ( "dynamic",
        [
          Alcotest.test_case "evaluate mode" `Quick test_domino_evaluate_mode;
          Alcotest.test_case "precharge mode" `Quick test_domino_precharge_mode;
          Alcotest.test_case "static quiet in precharge" `Quick
            test_static_circuit_quiet_in_precharge;
          Alcotest.test_case "both modes" `Quick test_evaluate_and_precharge;
        ] );
      ( "reporting",
        [
          Alcotest.test_case "slope violations" `Quick test_slope_violation_reported;
          Alcotest.test_case "group delays" `Quick test_group_delays;
        ] );
    ]
