(* Unit tests: Smart_constraints (§5.3 constraint generation). *)

module C = Smart_constraints.Constraints
module P = Smart_gp.Problem
module Posy = Smart_posy.Posy
module Cell = Smart_circuit.Cell
module Pdn = Smart_circuit.Pdn
module B = Smart_circuit.Netlist.Builder
module Mux = Smart_macros.Mux
module Macro = Smart_macros.Macro
module Tech = Smart_tech.Tech

let tech = Tech.default
let checkb msg = Alcotest.(check bool) msg
let checki msg = Alcotest.(check int) msg

let count_prefix prefix (gen : C.result) =
  List.length
    (List.filter
       (fun (n, _) ->
         String.length n >= String.length prefix
         && String.sub n 0 (String.length prefix) = prefix)
       gen.C.problem.P.inequalities)

let inverter_chain () =
  let b = B.create "c2" in
  let i = B.input b "in" in
  let w = B.wire b "w" in
  let o = B.output b "out" in
  B.inst b ~name:"g1" ~cell:(Cell.inverter ~p:"P1" ~n:"N1") ~inputs:[ ("a", i) ] ~out:w ();
  B.inst b ~name:"g2" ~cell:(Cell.inverter ~p:"P2" ~n:"N2") ~inputs:[ ("a", w) ] ~out:o ();
  B.ext_load b o 20.;
  B.freeze b

let test_static_two_constraints () =
  (* One path, rise and fall chains -> 2 timing constraints (§5.3). *)
  let gen = C.generate tech (inverter_chain ()) (C.spec 100.) in
  checki "two timing constraints" 2 gen.C.timing_constraints;
  checki "path count" 1 gen.C.path_count

let test_passgate_control_constraints () =
  (* §5.3: four constraints through the control port, two through data. *)
  let b = B.create "pg" in
  let d = B.input b "d" and s = B.input b "s" in
  let m = B.wire b "m" in
  let o = B.output b "out" in
  B.inst b ~name:"pg" ~cell:(Cell.Passgate { style = Cell.N_only; label = "N2" })
    ~inputs:[ ("d", d); ("s", s) ] ~out:m ();
  B.inst b ~name:"buf" ~cell:(Cell.inverter ~p:"P3" ~n:"N3") ~inputs:[ ("a", m) ] ~out:o ();
  B.ext_load b o 10.;
  let nl = B.freeze b in
  let gen = C.generate ~reductions:Smart_paths.Paths.no_reductions tech nl (C.spec 100.) in
  (* data port: 2 sense chains; control port: 2 chains (on-edge x two
     output transitions).  For a lone N-pass the control chains duplicate
     the data chains exactly (no local select inverter), and §5.2-style
     dominance folds identical constraints -- so 2 distinct survive here. *)
  checkb "both senses constrained" true (gen.C.timing_constraints >= 2);
  checki "no dynamic constraints" 0 gen.C.precharge_constraints;
  (* A transmission gate has a local select inverter: its control chains
     differ from the data chains and must survive the fold. *)
  let b2 = B.create "pg2" in
  let d = B.input b2 "d" and s = B.input b2 "s" in
  let m = B.wire b2 "m" in
  let o = B.output b2 "out" in
  B.inst b2 ~name:"pg" ~cell:(Cell.Passgate { style = Cell.Cmos_tgate; label = "N2" })
    ~inputs:[ ("d", d); ("s", s) ] ~out:m ();
  B.inst b2 ~name:"buf" ~cell:(Cell.inverter ~p:"P3" ~n:"N3") ~inputs:[ ("a", m) ] ~out:o ();
  B.ext_load b2 o 10.;
  let nl2 = B.freeze b2 in
  let gen2 = C.generate ~reductions:Smart_paths.Paths.no_reductions tech nl2 (C.spec 100.) in
  checkb "tgate control constraints survive" true (gen2.C.timing_constraints >= 3)

let domino_stage () =
  let b = B.create "dm" in
  let i = B.input b "a" in
  let o = B.output b "out" in
  B.inst b ~name:"d"
    ~cell:
      (Cell.Domino
         { gate_name = "buf"; pull_down = Pdn.leaf ~pin:"a" ~label:"N1";
           precharge = "P1"; eval = Some "F1"; out_p = "P2"; out_n = "N2";
           keeper = false })
    ~inputs:[ ("a", i) ] ~out:o ();
  B.ext_load b o 10.;
  B.freeze b

let test_domino_constraints () =
  let gen = C.generate tech (domino_stage ()) (C.spec 100.) in
  (* Monotone domino: only the rising evaluate chain. *)
  checki "one eval timing constraint" 1 gen.C.timing_constraints;
  checki "one precharge constraint" 1 gen.C.precharge_constraints

let test_otb_stage_constraints () =
  (* Two clocked stages in series: OTB off adds phase-boundary constraints. *)
  let b = B.create "otb" in
  let i = B.input b "a" in
  let w = B.wire b "w" in
  let o = B.output b "out" in
  let dom name input out footed =
    B.inst b ~name
      ~cell:
        (Cell.Domino
           { gate_name = name; pull_down = Pdn.leaf ~pin:"a" ~label:(name ^ "N");
             precharge = name ^ "P"; eval = (if footed then Some (name ^ "F") else None);
             out_p = name ^ "IP"; out_n = name ^ "IN"; keeper = false })
      ~inputs:[ ("a", input) ] ~out ()
  in
  dom "s1" i w true;
  dom "s2" w o false;
  B.ext_load b o 10.;
  let nl = B.freeze b in
  let with_otb = C.generate tech nl (C.spec ~otb:true 100.) in
  let without = C.generate tech nl (C.spec ~otb:false 100.) in
  checki "no stage constraints with OTB" 0 with_otb.C.stage_constraints;
  checkb "stage constraints added without OTB" true (without.C.stage_constraints > 0)

let test_bounds_cover_labels () =
  let nl = inverter_chain () in
  let gen = C.generate tech nl (C.spec 100.) in
  let bound_vars = List.map (fun (v, _, _) -> v) gen.C.problem.P.bounds in
  List.iter
    (fun l -> checkb ("bound for " ^ l) true (List.mem l bound_vars))
    (Smart_circuit.Netlist.labels nl)

let test_slope_constraints_emitted () =
  let gen = C.generate tech (inverter_chain ()) (C.spec 100.) in
  checkb "slope constraints exist" true (gen.C.slope_constraints > 0);
  checkb "named s:" true (count_prefix "s:" gen > 0)

let test_objectives () =
  let nl = domino_stage () in
  let area = C.generate ~objective:C.Area tech nl (C.spec 100.) in
  let power = C.generate ~objective:C.Power_weighted tech nl (C.spec 100.) in
  let clock = C.generate ~objective:C.Clock_load tech nl (C.spec 100.) in
  let nterms g = Posy.num_terms g.C.problem.P.objective in
  checkb "power objective adds clock weighting" true (nterms power >= nterms area);
  checkb "clock objective mentions precharge label" true
    (List.mem "P1" (Posy.vars clock.C.problem.P.objective))

let test_rescale () =
  let gen = C.generate tech (inverter_chain ()) (C.spec 100.) in
  let scaled = C.rescale gen ~timing:0.5 ~precharge:1.0 in
  (* Tightening by 2 doubles every timing posynomial's value. *)
  let value g =
    let _, p = List.hd g.C.problem.P.inequalities in
    Posy.eval (fun _ -> 2.) p
  in
  Alcotest.(check (float 1e-9)) "doubled" (2. *. value gen) (value scaled)

let test_min_delay_variant () =
  let gen = C.generate_min_delay tech (inverter_chain ()) (C.spec 100.) in
  checkb "delay variable in objective" true
    (List.mem C.delay_variable (Posy.vars gen.C.problem.P.objective));
  match Smart_gp.Solver.solve gen.C.problem with
  | Ok sol ->
    checkb "solves" true (sol.Smart_gp.Solver.status = Smart_gp.Solver.Optimal);
    checkb "positive min delay" true
      (Smart_gp.Solver.lookup sol C.delay_variable > 1.)
  | Error e -> Alcotest.fail e

let test_dominance_pruning_effective () =
  let info = Smart_macros.Cla_adder.generate ~bits:8 () in
  let gen = C.generate tech info.Macro.netlist (C.spec 400.) in
  checkb "dominated constraints pruned" true (gen.C.dominated_pruned > 0)

let test_spec_defaults () =
  let s = C.spec 80. in
  checkb "otb default on" true s.C.otb;
  checkb "no explicit budget" true (s.C.precharge_budget = None);
  let s2 = C.spec ~precharge_budget:30. ~otb:false 80. in
  checkb "overrides" true (s2.C.precharge_budget = Some 30. && not s2.C.otb)

let test_mux_generation_all_topologies () =
  (* Constraint generation succeeds on every database mux topology. *)
  List.iter
    (fun (_, (info : Macro.info)) ->
      let gen = C.generate tech info.Macro.netlist (C.spec 120.) in
      checkb (Macro.name info) true (gen.C.timing_constraints > 0))
    (Mux.all_for ~n:4 ())

let () =
  Alcotest.run "smart_constraints"
    [
      ( "families",
        [
          Alcotest.test_case "static rise/fall" `Quick test_static_two_constraints;
          Alcotest.test_case "pass control port" `Quick test_passgate_control_constraints;
          Alcotest.test_case "domino eval+precharge" `Quick test_domino_constraints;
          Alcotest.test_case "OTB stage budget" `Quick test_otb_stage_constraints;
        ] );
      ( "program",
        [
          Alcotest.test_case "bounds" `Quick test_bounds_cover_labels;
          Alcotest.test_case "slope caps" `Quick test_slope_constraints_emitted;
          Alcotest.test_case "objectives" `Quick test_objectives;
          Alcotest.test_case "rescale" `Quick test_rescale;
          Alcotest.test_case "min-delay variant" `Quick test_min_delay_variant;
          Alcotest.test_case "dominance pruning" `Quick test_dominance_pruning_effective;
          Alcotest.test_case "spec defaults" `Quick test_spec_defaults;
          Alcotest.test_case "all mux topologies" `Quick test_mux_generation_all_topologies;
        ] );
    ]
