(* Robustness at process corners: the whole flow (baseline, sizer, STA,
   power) must behave sanely when the technology's RC products are scaled
   up or down 40% (slow / fast corners). *)

module Smart = Smart_core.Smart
module Tech = Smart.Tech
module Sizer = Smart.Sizer
module C = Smart.Constraints

let checkb msg = Alcotest.(check bool) msg

let corners =
  [ ("fast", Tech.scaled ~rc_scale:0.6 ~name:"fast" Tech.default);
    ("typ", Tech.default);
    ("slow", Tech.scaled ~rc_scale:1.4 ~name:"slow" Tech.default) ]

let test_fo4_ordering () =
  match List.map (fun (_, t) -> Tech.fo4_delay t) corners with
  | [ fast; typ; slow ] ->
    checkb "fast < typ < slow" true (fast < typ && typ < slow)
  | _ -> assert false

let test_sizer_all_corners () =
  let info = Smart.Mux.generate Smart.Mux.Strongly_mutexed ~n:4 in
  let nl = info.Smart.Macro.netlist in
  List.iter
    (fun (name, tech) ->
      match Sizer.minimize_delay tech nl (C.spec 1e6) with
      | Error e -> Alcotest.fail (name ^ ": " ^ e)
      | Ok md -> (
        let target = 1.25 *. md.Sizer.golden_min in
        match Sizer.size tech nl (C.spec target) with
        | Error e -> Alcotest.fail (name ^ ": " ^ e)
        | Ok o ->
          checkb (name ^ " meets spec") true
            (o.Sizer.achieved_delay <= target *. 1.03)))
    corners

let test_min_delay_tracks_corner () =
  let info = Smart.Zero_detect.generate ~bits:8 () in
  let nl = info.Smart.Macro.netlist in
  let mins =
    List.map
      (fun (name, tech) ->
        match Sizer.minimize_delay tech nl (C.spec 1e6) with
        | Ok md -> md.Sizer.golden_min
        | Error e -> Alcotest.fail (name ^ ": " ^ e))
      corners
  in
  match mins with
  | [ fast; typ; slow ] ->
    checkb "corner ordering" true (fast < typ && typ < slow);
    (* RC scaling is roughly linear in delay. *)
    checkb "scaling magnitude sane" true (slow /. fast > 1.5 && slow /. fast < 4.)
  | _ -> assert false

let test_domino_corners () =
  let info = Smart.Mux.generate Smart.Mux.Domino_unsplit ~n:4 in
  let nl = info.Smart.Macro.netlist in
  List.iter
    (fun (name, tech) ->
      match Sizer.minimize_delay tech nl (C.spec 1e6) with
      | Error e -> Alcotest.fail (name ^ ": " ^ e)
      | Ok md -> (
        let target = 1.3 *. md.Sizer.golden_min in
        match Sizer.size tech nl (C.spec target) with
        | Error e -> Alcotest.fail (name ^ ": " ^ e)
        | Ok o ->
          checkb (name ^ " precharge ok") true
            (o.Sizer.achieved_precharge <= target *. 1.03)))
    corners

let () =
  Alcotest.run "smart_corners"
    [
      ( "corners",
        [
          Alcotest.test_case "FO4 ordering" `Quick test_fo4_ordering;
          Alcotest.test_case "sizer at all corners" `Slow test_sizer_all_corners;
          Alcotest.test_case "min delay tracks corner" `Slow test_min_delay_tracks_corner;
          Alcotest.test_case "domino at corners" `Slow test_domino_corners;
        ] );
    ]
