(* Unit + property tests: Smart_paths (extraction and §5.2 reductions). *)

module Paths = Smart_paths.Paths
module Cell = Smart_circuit.Cell
module N = Smart_circuit.Netlist
module B = Smart_circuit.Netlist.Builder
module Mux = Smart_macros.Mux
module Macro = Smart_macros.Macro

let checkb msg = Alcotest.(check bool) msg
let checki msg = Alcotest.(check int) msg
let checkfl msg = Alcotest.(check (float 1e-9)) msg

let chain n =
  let b = B.create "chain" in
  let i = B.input b "in" in
  let rec build k prev =
    if k = n then prev
    else begin
      let next = if k = n - 1 then B.output b "out" else B.wire b (Printf.sprintf "w%d" k) in
      B.inst b ~name:(Printf.sprintf "g%d" k)
        ~cell:(Cell.inverter ~p:(Printf.sprintf "P%d" k) ~n:(Printf.sprintf "N%d" k))
        ~inputs:[ ("a", prev) ] ~out:next ();
      build (k + 1) next
    end
  in
  let o = build 0 i in
  B.ext_load b o 5.;
  B.freeze b

(* k parallel 2-stage branches re-converging on a k-input NAND. *)
let diamond k =
  let b = B.create "diamond" in
  let i = B.input b "in" in
  let o = B.output b "out" in
  let mids =
    List.init k (fun j ->
        let w = B.wire b (Printf.sprintf "m%d" j) in
        B.inst b ~name:(Printf.sprintf "b%d" j)
          ~cell:(Cell.inverter ~p:(Printf.sprintf "P%d" j) ~n:(Printf.sprintf "N%d" j))
          ~inputs:[ ("a", i) ] ~out:w ();
        w)
  in
  B.inst b ~name:"merge" ~cell:(Cell.nand ~inputs:k ~p:"Pm" ~n:"Nm")
    ~inputs:(List.mapi (fun j w -> (Printf.sprintf "a%d" j, w)) mids)
    ~out:o ();
  B.ext_load b o 5.;
  B.freeze b

let test_chain_counts () =
  let nl = chain 5 in
  checkfl "exhaustive" 1. (Paths.exhaustive_count nl);
  let paths, stats = Paths.extract nl in
  checki "one path" 1 (List.length paths);
  checki "path length" 5 (List.length (List.hd paths).Paths.steps);
  checki "reduced count" 1 stats.Paths.reduced_paths

let test_diamond_counts () =
  let nl = diamond 4 in
  checkfl "4 exhaustive paths" 4. (Paths.exhaustive_count nl);
  (* Branches have distinct labels, so regularity cannot merge them, but
     pin precedence can only keep pins with same-class fanins... each mid
     net has a distinct class (distinct labels), so all 4 survive. *)
  let _, stats = Paths.extract ~reductions:Paths.no_reductions nl in
  checki "no reduction keeps all" 4 stats.Paths.reduced_paths

let test_diamond_regular_labels_collapse () =
  (* Same as diamond but all branches share labels: one representative. *)
  let b = B.create "regular" in
  let i = B.input b "in" in
  let o = B.output b "out" in
  let mids =
    List.init 4 (fun j ->
        let w = B.wire b (Printf.sprintf "m%d" j) in
        B.inst b ~name:(Printf.sprintf "b%d" j)
          ~cell:(Cell.inverter ~p:"P" ~n:"N")
          ~inputs:[ ("a", i) ] ~out:w ();
        w)
  in
  B.inst b ~name:"merge" ~cell:(Cell.nand ~inputs:4 ~p:"Pm" ~n:"Nm")
    ~inputs:(List.mapi (fun j w -> (Printf.sprintf "a%d" j, w)) mids)
    ~out:o ();
  B.ext_load b o 5.;
  let nl = B.freeze b in
  let _, stats = Paths.extract nl in
  checki "collapsed to one" 1 stats.Paths.reduced_paths;
  checkfl "exhaustive still 4" 4. stats.Paths.exhaustive_paths

let test_reductions_sound_on_mux () =
  (* Reduced set never exceeds the unreduced set and is non-empty. *)
  let info = Mux.generate Mux.Strongly_mutexed ~n:8 in
  let nl = info.Macro.netlist in
  let full, _ = Paths.extract ~reductions:Paths.no_reductions nl in
  let red, stats = Paths.extract nl in
  checkb "reduced nonempty" true (List.length red > 0);
  checkb "reduced <= full" true (List.length red <= List.length full);
  checkb "factor >= 1" true (stats.Paths.reduction_factor >= 1.)

let test_control_pins_never_merged () =
  (* The tri-state's en (control) and d (data) pins both see primary
     inputs; precedence must keep both. *)
  let info = Mux.generate Mux.Tristate_mux ~n:4 in
  let paths, _ = Paths.extract info.Macro.netlist in
  let has_pin p =
    List.exists
      (fun (path : Paths.path) ->
        List.exists (fun s -> s.Paths.s_pin = p) path.Paths.steps)
      paths
  in
  checkb "data path present" true (has_pin "d");
  checkb "control path present" true (has_pin "en")

let test_adder_headline_numbers () =
  (* The §5.2 experiment: 64-bit adder, exhaustive >> reduced. *)
  let info = Smart_macros.Cla_adder.generate ~bits:64 () in
  let _, stats = Paths.extract info.Macro.netlist in
  checkb "exhaustive over 10^5" true (stats.Paths.exhaustive_paths > 1e5);
  checkb "reduction factor > 50x" true (stats.Paths.reduction_factor > 50.);
  checkb "classes far below nets" true
    (stats.Paths.class_count * 2 < Array.length info.Macro.netlist.N.nets)

let test_max_paths_guard () =
  let info = Smart_macros.Cla_adder.generate ~bits:16 () in
  checkb "budget enforced" true
    (try
       ignore (Paths.extract ~reductions:Paths.no_reductions ~max_paths:10
                 info.Macro.netlist);
       false
     with Smart_util.Err.Smart_error _ -> true)

let test_endpoints_are_outputs () =
  let info = Mux.generate Mux.Strongly_mutexed ~n:4 in
  let nl = info.Macro.netlist in
  let paths, _ = Paths.extract nl in
  List.iter
    (fun p ->
      let e = Paths.path_endpoint p in
      checkb "endpoint is primary output" true
        ((N.net nl e).N.net_kind = N.Primary_output))
    paths

let test_classes_api () =
  let nl = chain 4 in
  let c = Paths.classes nl in
  checkb "class count positive" true (Paths.class_count c > 0);
  let w0 = N.find_net nl "w0" in
  let cls = Paths.class_of_net c w0 in
  let rep = Paths.class_rep c cls in
  checkb "rep belongs to class" true (Paths.class_of_net c rep = cls);
  checki "reps cover classes" (Paths.class_count c)
    (List.length (Paths.class_reps c))

let prop_exhaustive_count_matches_enumeration =
  QCheck.Test.make ~name:"DP count = enumerated count (no reductions)"
    ~count:30
    QCheck.(int_range 2 5)
    (fun k ->
      let nl = diamond k in
      let paths, _ = Paths.extract ~reductions:Paths.no_reductions nl in
      float_of_int (List.length paths) = Paths.exhaustive_count nl)

let () =
  Alcotest.run "smart_paths"
    [
      ( "counting",
        [
          Alcotest.test_case "chain" `Quick test_chain_counts;
          Alcotest.test_case "diamond" `Quick test_diamond_counts;
          Alcotest.test_case "regular collapse" `Quick test_diamond_regular_labels_collapse;
        ] );
      ( "reductions",
        [
          Alcotest.test_case "sound on mux" `Quick test_reductions_sound_on_mux;
          Alcotest.test_case "control pins kept" `Quick test_control_pins_never_merged;
          Alcotest.test_case "64-bit adder headline" `Slow test_adder_headline_numbers;
          Alcotest.test_case "budget guard" `Quick test_max_paths_guard;
          Alcotest.test_case "endpoints" `Quick test_endpoints_are_outputs;
          Alcotest.test_case "classes api" `Quick test_classes_api;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_exhaustive_count_matches_enumeration ] );
    ]
