(* Unit tests: Smart_baseline (manual-design model). *)

module Baseline = Smart_baseline.Baseline
module Cell = Smart_circuit.Cell
module N = Smart_circuit.Netlist
module B = Smart_circuit.Netlist.Builder
module Mux = Smart_macros.Mux
module Macro = Smart_macros.Macro
module Sta = Smart_sta.Sta
module Tech = Smart_tech.Tech

let tech = Tech.default
let checkb msg = Alcotest.(check bool) msg

let chain () =
  let b = B.create "chain" in
  let i = B.input b "in" in
  let w = B.wire b "w" in
  let o = B.output b "out" in
  B.inst b ~name:"g1" ~cell:(Cell.inverter ~p:"P1" ~n:"N1") ~inputs:[ ("a", i) ] ~out:w ();
  B.inst b ~name:"g2" ~cell:(Cell.inverter ~p:"P2" ~n:"N2") ~inputs:[ ("a", w) ] ~out:o ();
  B.ext_load b o 60.;
  B.freeze b

let test_meets_reachable_target () =
  let nl = chain () in
  let r = Baseline.size ~target:80. tech nl in
  checkb "met" true r.Baseline.met_target;
  checkb "golden agrees" true (r.Baseline.achieved_delay <= 80.)

let test_gives_up_gracefully () =
  let nl = chain () in
  let r = Baseline.size ~target:1. tech nl in
  checkb "not met" false r.Baseline.met_target;
  checkb "still returns a sizing" true (r.Baseline.total_width > 0.)

let test_grid_snapping () =
  let nl = chain () in
  let r = Baseline.size ~target:70. tech nl in
  List.iter
    (fun (_, w) ->
      let g = Baseline.default_params.Baseline.grid in
      let snapped = Float.round (w /. g) *. g in
      checkb "on grid (or clamped)" true
        (abs_float (w -. snapped) < 1e-6 || w = tech.Tech.w_max || w = tech.Tech.w_min))
    r.Baseline.sizing

let test_margin_inflates () =
  let nl = chain () in
  let lean =
    Baseline.size
      ~params:{ Baseline.default_params with Baseline.margin = 1.0 }
      ~target:70. tech nl
  in
  let fat =
    Baseline.size
      ~params:{ Baseline.default_params with Baseline.margin = 1.4 }
      ~target:70. tech nl
  in
  checkb "margin adds width" true
    (fat.Baseline.total_width >= lean.Baseline.total_width)

let test_uniform_clock () =
  let info = Mux.generate (Mux.Domino_partitioned None) ~n:8 in
  let nl = info.Macro.netlist in
  let r = Baseline.size ~target:150. tech nl in
  (* All clocked labels end up with one template width. *)
  let clocked =
    Array.fold_left
      (fun acc (i : N.instance) ->
        List.map fst (Cell.clocked_widths i.N.cell) @ acc)
      [] nl.N.instances
    |> List.sort_uniq String.compare
  in
  let widths = List.map r.Baseline.sizing_fn clocked in
  (match widths with
  | [] -> Alcotest.fail "no clocked devices"
  | w :: rest ->
    checkb "uniform" true (List.for_all (fun x -> abs_float (x -. w) < 1e-9) rest));
  let no_uniform =
    Baseline.size
      ~params:{ Baseline.default_params with Baseline.uniform_clock = false }
      ~target:150. tech nl
  in
  checkb "uniform clock costs width" true
    (r.Baseline.clock_load_width >= no_uniform.Baseline.clock_load_width)

let test_recovery_keeps_timing () =
  let info = Mux.generate Mux.Strongly_mutexed ~n:8 in
  let nl = info.Macro.netlist in
  let r = Baseline.size ~target:40. tech nl in
  let sta = Sta.analyze tech nl ~sizing:r.Baseline.sizing_fn in
  Alcotest.(check (float 1e-6)) "reported delay consistent"
    r.Baseline.achieved_delay sta.Sta.max_delay

let test_deterministic () =
  let nl = chain () in
  let a = Baseline.size ~target:75. tech nl in
  let b = Baseline.size ~target:75. tech nl in
  Alcotest.(check (list (pair string (float 1e-12)))) "same sizing"
    a.Baseline.sizing b.Baseline.sizing

let () =
  Alcotest.run "smart_baseline"
    [
      ( "greedy",
        [
          Alcotest.test_case "meets reachable target" `Quick test_meets_reachable_target;
          Alcotest.test_case "gives up gracefully" `Quick test_gives_up_gracefully;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
        ] );
      ( "habits",
        [
          Alcotest.test_case "grid snapping" `Quick test_grid_snapping;
          Alcotest.test_case "margin" `Quick test_margin_inflates;
          Alcotest.test_case "uniform clock" `Quick test_uniform_clock;
          Alcotest.test_case "recovery consistency" `Quick test_recovery_keeps_timing;
        ] );
    ]
