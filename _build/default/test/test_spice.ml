(* Unit tests: SPICE export — the device-by-device expansion must agree
   with the library's width/count accounting on every macro family. *)

module Spice = Smart_circuit.Spice
module N = Smart_circuit.Netlist
module B = Smart_circuit.Netlist.Builder
module Cell = Smart_circuit.Cell
module Macro = Smart_macros.Macro
module Mux = Smart_macros.Mux

let checkb msg = Alcotest.(check bool) msg
let checki msg = Alcotest.(check int) msg
let checkf tol msg = Alcotest.(check (float tol)) msg

let sizing l = 1.0 +. (float_of_int (String.length l) /. 10.)

let inverter_netlist () =
  let b = B.create "inv1" in
  let i = B.input b "a" in
  let o = B.output b "y" in
  B.inst b ~name:"u1" ~cell:(Cell.inverter ~p:"P" ~n:"N") ~inputs:[ ("a", i) ] ~out:o ();
  B.freeze b

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_inverter_deck () =
  let nl = inverter_netlist () in
  let deck = Spice.subckt nl ~sizing:(fun _ -> 2.) in
  checkb "comment header" true (String.length deck > 0 && deck.[0] = '*');
  let lines = String.split_on_char '\n' deck in
  let m_lines = List.filter (fun l -> String.length l > 0 && l.[0] = 'M') lines in
  checki "two devices" 2 (List.length m_lines);
  checkb "has a PMOS card" true (List.exists (contains ~sub:"PMOS") m_lines);
  checkb "has an NMOS card" true (List.exists (contains ~sub:"NMOS") m_lines);
  checkb "widths and lengths" true
    (List.for_all (contains ~sub:"W=2.000U L=0.18U") m_lines);
  checkb "ends card" true (List.exists (fun l -> l = ".ENDS inv1") lines)

let agree (info : Macro.info) =
  let nl = info.Macro.netlist in
  checki
    (Macro.name info ^ ": device cards = device_count")
    (N.device_count nl)
    (Spice.device_cards nl ~sizing);
  checkf 1e-6
    (Macro.name info ^ ": deck width = total_width")
    (N.total_width nl sizing)
    (Spice.total_width_of_deck nl ~sizing)

let test_counts_agree_across_macros () =
  List.iter agree
    [
      Mux.generate Mux.Strongly_mutexed ~n:4;
      Mux.generate Mux.Weakly_mutexed ~n:4;
      Mux.generate Mux.Encoded_2to1 ~n:2;
      Mux.generate Mux.Tristate_mux ~n:4;
      Mux.generate Mux.Domino_unsplit ~n:4;
      Mux.generate (Mux.Domino_partitioned None) ~n:5;
      Smart_macros.Incrementor.generate ~bits:6 ();
      Smart_macros.Zero_detect.generate ~bits:9 ();
      Smart_macros.Decoder.generate ~in_bits:3 ();
      Smart_macros.Comparator.generate ~bits:8 ();
      Smart_macros.Cla_adder.generate ~bits:8 ();
      Smart_macros.Shifter.generate ~bits:8 ();
      Smart_macros.Encoder.generate ~out_bits:3 ();
      Smart_macros.Regfile.generate ~words:4 ~width:2 ();
    ]

let test_deck_deterministic () =
  let info = Mux.generate Mux.Domino_unsplit ~n:4 in
  let a = Spice.subckt info.Macro.netlist ~sizing in
  let b = Spice.subckt info.Macro.netlist ~sizing in
  Alcotest.(check string) "same deck" a b

let test_ports_include_io_and_rails () =
  let info = Mux.generate Mux.Domino_unsplit ~n:4 in
  let deck = Spice.subckt info.Macro.netlist ~sizing in
  let subckt_line =
    List.find
      (fun l -> String.length l > 7 && String.sub l 0 7 = ".SUBCKT")
      (String.split_on_char '\n' deck)
  in
  List.iter
    (fun p ->
      checkb (p ^ " in ports") true
        (List.mem p (String.split_on_char ' ' subckt_line)))
    [ "in0"; "s3"; "out"; "clk"; "vdd"; "vss" ]

let () =
  Alcotest.run "smart_spice"
    [
      ( "spice",
        [
          Alcotest.test_case "inverter deck" `Quick test_inverter_deck;
          Alcotest.test_case "counts agree across macros" `Quick
            test_counts_agree_across_macros;
          Alcotest.test_case "deterministic" `Quick test_deck_deterministic;
          Alcotest.test_case "ports" `Quick test_ports_include_io_and_rails;
        ] );
    ]
