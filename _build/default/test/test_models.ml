(* Unit + property tests: Smart_models (arcs, loads, posynomial and golden
   delay models). *)

module Arc = Smart_models.Arc
module Load = Smart_models.Load
module Delay = Smart_models.Delay
module Golden = Smart_models.Golden
module Drive = Smart_models.Drive
module Cell = Smart_circuit.Cell
module Pdn = Smart_circuit.Pdn
module B = Smart_circuit.Netlist.Builder
module Tech = Smart_tech.Tech
module Posy = Smart_posy.Posy
module Rng = Smart_util.Rng

let tech = Tech.default
let checkb msg = Alcotest.(check bool) msg
let checki msg = Alcotest.(check int) msg
let checkf tol msg = Alcotest.(check (float tol)) msg

(* ---------------- arcs ---------------- *)

let test_static_arcs () =
  let nand2 = Cell.nand ~inputs:2 ~p:"P" ~n:"N" in
  let arcs = Arc.arcs_of nand2 in
  checki "one arc per pin" 2 (List.length arcs);
  List.iter
    (fun a ->
      checkb "inverting senses" true
        (a.Arc.senses = [ (Arc.Rise, Arc.Fall); (Arc.Fall, Arc.Rise) ]))
    arcs

let test_passgate_arcs () =
  let pg = Cell.Passgate { style = Cell.N_only; label = "N" } in
  let d = Arc.arc_of_pin pg "d" and s = Arc.arc_of_pin pg "s" in
  checkb "data buffers" true (d.Arc.senses = [ (Arc.Rise, Arc.Rise); (Arc.Fall, Arc.Fall) ]);
  checkb "control kind" true (s.Arc.kind = Arc.Control);
  (* The 4-constraints-per-passgate rule: the control arc alone carries two
     output senses for the turn-on edge. *)
  checki "control produces both senses" 2 (List.length s.Arc.senses);
  checkb "P-style turns on falling" true
    ((Arc.arc_of_pin (Cell.Passgate { style = Cell.P_only; label = "N" }) "s").Arc.senses
     |> List.for_all (fun (i, _) -> i = Arc.Fall))

let test_domino_arcs () =
  let dom = Cell.Domino { gate_name = "or2";
    pull_down = Pdn.parallel [ Pdn.leaf ~pin:"a" ~label:"N1"; Pdn.leaf ~pin:"b" ~label:"N1" ];
    precharge = "P1"; eval = Some "N2"; out_p = "P3"; out_n = "N3"; keeper = false } in
  let arcs = Arc.arcs_of dom in
  checki "2 eval + 1 precharge" 3 (List.length arcs);
  let eval_arcs = List.filter (fun a -> a.Arc.kind = Arc.Eval) arcs in
  checkb "monotone rising" true
    (List.for_all (fun a -> a.Arc.senses = [ (Arc.Rise, Arc.Rise) ]) eval_arcs);
  let pre = Arc.arc_of_pin dom "clk" in
  checkb "precharge falls" true (pre.Arc.senses = [ (Arc.Fall, Arc.Fall) ]);
  checki "data arcs exclude precharge" 2 (List.length (Arc.data_arcs_of dom))

let test_arc_of_missing_pin () =
  checkb "raises" true
    (try ignore (Arc.arc_of_pin (Cell.inverter ~p:"P" ~n:"N") "zz"); false
     with Smart_util.Err.Smart_error _ -> true)

(* ---------------- loads ---------------- *)

let chain_netlist () =
  let b = B.create "ld" in
  let i = B.input b "in" in
  let w = B.wire b "w" in
  let o = B.output b "out" in
  B.inst b ~name:"g1" ~cell:(Cell.inverter ~p:"P1" ~n:"N1") ~inputs:[ ("a", i) ] ~out:w ();
  B.inst b ~name:"g2" ~cell:(Cell.inverter ~p:"P2" ~n:"N2") ~inputs:[ ("a", w) ] ~out:o ();
  B.ext_load b o 25.;
  B.freeze b

let test_load_gate_cap () =
  let nl = chain_netlist () in
  let loads = Load.make tech nl in
  let w = Smart_circuit.Netlist.find_net nl "w" in
  (* load(w) = floor + wire + cg*(P2 + N2) *)
  let v = Load.numeric loads (fun _ -> 3.) w in
  let expected = 0.3 +. tech.Tech.wire_cap_per_fanout +. (tech.Tech.cg *. 6.) in
  checkf 1e-6 "gate-cap load" expected v

let test_load_ext () =
  let nl = chain_netlist () in
  let loads = Load.make tech nl in
  let o = Smart_circuit.Netlist.find_net nl "out" in
  checkf 1e-6 "external load counted" (0.3 +. 25.) (Load.numeric loads (fun _ -> 1.) o)

let test_load_through_passgate () =
  (* Driver sees the pass diffusion plus everything behind the switch. *)
  let b = B.create "pt" in
  let i = B.input b "in" in
  let s = B.input b "s" in
  let d = B.wire b "d" in
  let m = B.wire b "m" in
  let o = B.output b "out" in
  B.inst b ~name:"drv" ~cell:(Cell.inverter ~p:"P1" ~n:"N1") ~inputs:[ ("a", i) ] ~out:d ();
  B.inst b ~name:"pg" ~cell:(Cell.Passgate { style = Cell.Cmos_tgate; label = "N2" })
    ~inputs:[ ("d", d); ("s", s) ] ~out:m ();
  B.inst b ~name:"out" ~cell:(Cell.inverter ~p:"P3" ~n:"N3") ~inputs:[ ("a", m) ] ~out:o ();
  let nl = B.freeze b in
  let loads = Load.make tech nl in
  let d_net = Smart_circuit.Netlist.find_net nl "d" in
  let m_net = Smart_circuit.Netlist.find_net nl "m" in
  let sz _ = 2. in
  checkb "driver load exceeds downstream load" true
    (Load.numeric loads sz d_net > Load.numeric loads sz m_net)

let test_load_symbolic_matches_numeric () =
  let nl = chain_netlist () in
  let loads = Load.make tech nl in
  let w = Smart_circuit.Netlist.find_net nl "w" in
  let sym = Load.symbolic loads w in
  let env v = 1.7 +. float_of_int (String.length v) in
  checkf 1e-9 "symbolic = numeric" (Posy.eval env sym)
    (Load.numeric loads env w)

(* ---------------- delay models ---------------- *)

let inv = Cell.inverter ~p:"P" ~n:"N"

let posy_delay ?(w = 2.) ?(load = 20.) ?(slope = 30.) ~sense () =
  let p =
    Delay.stage_delay tech inv ~pin:"a" ~out_sense:sense
      ~load:(Posy.const load) ~in_slope:(Posy.const slope)
  in
  Posy.eval (fun _ -> w) p

let golden_delay ?(w = 2.) ?(load = 20.) ?(slope = 30.) ~sense () =
  fst (Golden.arc_delay tech ~sizing:(fun _ -> w) inv ~pin:"a" ~out_sense:sense
         ~load ~in_slope:slope)

let test_delay_monotone_in_load () =
  checkb "posy: more load, more delay" true
    (posy_delay ~load:40. ~sense:Arc.Rise () > posy_delay ~load:10. ~sense:Arc.Rise ());
  checkb "golden too" true
    (golden_delay ~load:40. ~sense:Arc.Rise () > golden_delay ~load:10. ~sense:Arc.Rise ())

let test_delay_antitone_in_width () =
  checkb "posy: wider, faster (external load)" true
    (posy_delay ~w:1. ~sense:Arc.Rise () > posy_delay ~w:8. ~sense:Arc.Rise ());
  checkb "golden too" true
    (golden_delay ~w:1. ~sense:Arc.Rise () > golden_delay ~w:8. ~sense:Arc.Rise ())

let test_delay_slope_sensitivity () =
  checkb "slower input edge, more delay" true
    (posy_delay ~slope:100. ~sense:Arc.Rise () > posy_delay ~slope:10. ~sense:Arc.Rise ());
  checkb "golden saturates but increases" true
    (golden_delay ~slope:100. ~sense:Arc.Rise () > golden_delay ~slope:10. ~sense:Arc.Rise ())

let test_rise_slower_than_fall () =
  (* rp > rn at equal widths. *)
  checkb "posy" true (posy_delay ~sense:Arc.Rise () > posy_delay ~sense:Arc.Fall ());
  checkb "golden" true (golden_delay ~sense:Arc.Rise () > golden_delay ~sense:Arc.Fall ())

let test_model_tracks_golden () =
  (* §5.1: the optimiser's model "need not be exact".  We require every
     random point to stay within a generous 2.5x envelope (a posynomial
     cannot express the golden model's slope saturation at tiny stages)
     and the geometric-mean agreement to be tight. *)
  let rng = Rng.create 5 in
  let cells =
    [ inv;
      Cell.nand ~inputs:3 ~p:"P" ~n:"N";
      Cell.nor ~inputs:2 ~p:"P" ~n:"N" ]
  in
  let ratios = ref [] in
  for _ = 1 to 200 do
    let cell = List.nth cells (Rng.int rng 3) in
    let w = Rng.uniform rng 0.5 20. in
    let load = Rng.uniform rng 2. 120. in
    let slope = Rng.uniform rng 5. 100. in
    let pin = List.hd (Cell.input_pins cell) in
    let sense = if Rng.bool rng then Arc.Rise else Arc.Fall in
    let m =
      Posy.eval (fun _ -> w)
        (Delay.stage_delay tech cell ~pin ~out_sense:sense
           ~load:(Posy.const load) ~in_slope:(Posy.const slope))
    in
    let g, _ =
      Golden.arc_delay tech ~sizing:(fun _ -> w) cell ~pin ~out_sense:sense
        ~load ~in_slope:slope
    in
    ratios := (m /. g) :: !ratios;
    checkb
      (Printf.sprintf "model/golden envelope (%.2f vs %.2f)" m g)
      true
      (m /. g > 0.4 && m /. g < 2.5)
  done;
  let gm = Smart_util.Stats.geomean !ratios in
  checkb (Printf.sprintf "geometric-mean agreement (%.3f)" gm) true
    (gm > 0.85 && gm < 1.25)

let test_domino_model_components () =
  let dom = Cell.Domino { gate_name = "or2";
    pull_down = Pdn.parallel [ Pdn.leaf ~pin:"a" ~label:"N1"; Pdn.leaf ~pin:"b" ~label:"N1" ];
    precharge = "P1"; eval = Some "N2"; out_p = "P3"; out_n = "N3"; keeper = true } in
  (* Wider foot cuts evaluate delay. *)
  let d w_foot =
    Posy.eval (fun l -> if l = "N2" then w_foot else 2.)
      (Delay.stage_delay tech dom ~pin:"a" ~out_sense:Arc.Rise
         ~load:(Posy.const 20.) ~in_slope:(Posy.const 20.))
  in
  checkb "foot width matters" true (d 1. > d 6.);
  (* Precharge arc depends on the precharge device. *)
  let p w_pre =
    Posy.eval (fun l -> if l = "P1" then w_pre else 2.)
      (Delay.stage_delay tech dom ~pin:"clk" ~out_sense:Arc.Fall
         ~load:(Posy.const 20.) ~in_slope:(Posy.const 20.))
  in
  checkb "precharge width matters" true (p 1. > p 6.)

let test_slope_model_positive () =
  let rng = Rng.create 9 in
  for _ = 1 to 100 do
    let w = Rng.uniform rng 0.5 10. in
    let s =
      Posy.eval (fun _ -> w)
        (Delay.stage_out_slope tech inv ~pin:"a" ~out_sense:Arc.Rise
           ~load:(Posy.const (Rng.uniform rng 1. 80.))
           ~in_slope:(Posy.const (Rng.uniform rng 5. 100.)))
    in
    checkb "slope positive" true (s > 0.)
  done

let test_gate_fit_calibration () =
  (* Figure 3's model-building hook: a per-gate-class multiplier shifts
     both the posynomial model and the golden timer for that class only. *)
  let nand2 = Cell.nand ~inputs:2 ~p:"P" ~n:"N" in
  let calibrated = Tech.calibrate tech [ ("nand2", 1.3) ] in
  let model t =
    Posy.eval (fun _ -> 2.)
      (Delay.stage_delay t nand2 ~pin:"a0" ~out_sense:Arc.Rise
         ~load:(Posy.const 20.) ~in_slope:(Posy.const 20.))
  in
  let golden t =
    fst (Golden.arc_delay t ~sizing:(fun _ -> 2.) nand2 ~pin:"a0"
           ~out_sense:Arc.Rise ~load:20. ~in_slope:20.)
  in
  checkb "model slower when calibrated up" true (model calibrated > model tech);
  checkb "golden follows" true (golden calibrated > golden tech);
  (* Another class is untouched. *)
  let minv t =
    Posy.eval (fun _ -> 2.)
      (Delay.stage_delay t inv ~pin:"a" ~out_sense:Arc.Rise
         ~load:(Posy.const 20.) ~in_slope:(Posy.const 20.))
  in
  checkf 1e-9 "inverter class unchanged" (minv tech) (minv calibrated);
  (* Overlay semantics. *)
  let twice = Tech.calibrate calibrated [ ("nand2", 1.0) ] in
  checkf 1e-9 "recalibration replaces" 1.0 (Tech.gate_fit_of twice "nand2")

let test_worst_out_sense () =
  checkb "static rise-worst" true (Drive.worst_out_sense inv = Arc.Rise);
  checkb "P-pass fall-worst" true
    (Drive.worst_out_sense (Cell.Passgate { style = Cell.P_only; label = "N" }) = Arc.Fall)

let test_drive_chains () =
  let nand2 = Cell.nand ~inputs:2 ~p:"P" ~n:"N" in
  let fall = Drive.static_chain nand2 ~pin:"a0" ~out_sense:Arc.Fall in
  (* two series N devices *)
  checkf 1e-9 "series stack resistance weight" 2.
    (List.fold_left (fun acc s -> acc +. s.Drive.seg_mult) 0. fall);
  let rise = Drive.static_chain nand2 ~pin:"a0" ~out_sense:Arc.Rise in
  checkb "pull-up is PMOS" true (List.for_all (fun s -> s.Drive.seg_is_p) rise)

let () =
  Alcotest.run "smart_models"
    [
      ( "arcs",
        [
          Alcotest.test_case "static" `Quick test_static_arcs;
          Alcotest.test_case "passgate" `Quick test_passgate_arcs;
          Alcotest.test_case "domino" `Quick test_domino_arcs;
          Alcotest.test_case "missing pin" `Quick test_arc_of_missing_pin;
        ] );
      ( "loads",
        [
          Alcotest.test_case "gate cap" `Quick test_load_gate_cap;
          Alcotest.test_case "external load" `Quick test_load_ext;
          Alcotest.test_case "through passgate" `Quick test_load_through_passgate;
          Alcotest.test_case "symbolic = numeric" `Quick test_load_symbolic_matches_numeric;
        ] );
      ( "delay",
        [
          Alcotest.test_case "monotone in load" `Quick test_delay_monotone_in_load;
          Alcotest.test_case "antitone in width" `Quick test_delay_antitone_in_width;
          Alcotest.test_case "slope sensitivity" `Quick test_delay_slope_sensitivity;
          Alcotest.test_case "rise slower than fall" `Quick test_rise_slower_than_fall;
          Alcotest.test_case "model tracks golden" `Quick test_model_tracks_golden;
          Alcotest.test_case "domino components" `Quick test_domino_model_components;
          Alcotest.test_case "slope model positive" `Quick test_slope_model_positive;
          Alcotest.test_case "gate-fit calibration" `Quick test_gate_fit_calibration;
          Alcotest.test_case "worst sense" `Quick test_worst_out_sense;
          Alcotest.test_case "drive chains" `Quick test_drive_chains;
        ] );
    ]
