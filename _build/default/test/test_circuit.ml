(* Unit tests: Smart_circuit (PDNs, cells, netlists). *)

module Pdn = Smart_circuit.Pdn
module Cell = Smart_circuit.Cell
module N = Smart_circuit.Netlist
module B = Smart_circuit.Netlist.Builder
module Family = Smart_circuit.Family
module Err = Smart_util.Err

let checkb msg = Alcotest.(check bool) msg
let checki msg = Alcotest.(check int) msg
let checkf msg = Alcotest.(check (float 1e-9)) msg

let leaf p l = Pdn.leaf ~pin:p ~label:l

(* A NAND2-of-OR pull-down: (a | b) . c *)
let oai_pdn = Pdn.series [ Pdn.parallel [ leaf "a" "N"; leaf "b" "N" ]; leaf "c" "N" ]

let test_pdn_queries () =
  checki "devices" 3 (Pdn.device_count oai_pdn);
  checki "depth" 2 (Pdn.max_series_depth oai_pdn);
  Alcotest.(check (list string)) "pins" [ "a"; "b"; "c" ] (Pdn.pins oai_pdn);
  Alcotest.(check (list string)) "labels" [ "N" ] (Pdn.labels oai_pdn);
  Alcotest.(check (list (pair string (float 1e-9)))) "widths" [ ("N", 3.) ]
    (Pdn.widths oai_pdn)

let test_pdn_flattening () =
  let p = Pdn.series [ Pdn.series [ leaf "a" "N"; leaf "b" "N" ]; leaf "c" "N" ] in
  checki "flattened depth" 3 (Pdn.max_series_depth p);
  (match p with
  | Pdn.Series xs -> checki "one level" 3 (List.length xs)
  | _ -> Alcotest.fail "expected series")

let test_pdn_empty_rejected () =
  Alcotest.check_raises "empty series" (Err.Smart_error "Pdn.series: empty")
    (fun () -> ignore (Pdn.series []))

let test_pdn_chains () =
  (* worst chain of (a|b).c is 2 devices *)
  let worst = Pdn.worst_series_chain oai_pdn in
  checkf "worst weight" 2. (List.fold_left (fun acc (_, m) -> acc +. m) 0. worst);
  (match Pdn.series_chain_through oai_pdn "a" with
  | Some chain ->
    checkf "through a" 2. (List.fold_left (fun acc (_, m) -> acc +. m) 0. chain)
  | None -> Alcotest.fail "pin a missing");
  checkb "absent pin" true (Pdn.series_chain_through oai_pdn "zz" = None)

let test_pdn_top_widths () =
  (* tops of (a|b).c are a and b (first element of the series) *)
  Alcotest.(check (list (pair string (float 1e-9)))) "tops" [ ("N", 2.) ]
    (Pdn.top_widths oai_pdn)

let test_pdn_conduction () =
  let env l p = List.assoc p l in
  checkb "a&c conducts" true (Pdn.conducts (env [ ("a", true); ("b", false); ("c", true) ]) oai_pdn);
  checkb "c alone does not" false
    (Pdn.conducts (env [ ("a", false); ("b", false); ("c", true) ]) oai_pdn);
  checkb "three-valued unknown" true
    (Pdn.conducts3
       (fun p -> if p = "c" then `T else `X)
       oai_pdn
    = `X)

let test_pdn_maps () =
  let renamed = Pdn.map_labels (fun l -> l ^ "2") oai_pdn in
  Alcotest.(check (list string)) "relabel" [ "N2" ] (Pdn.labels renamed);
  let repinned = Pdn.map_pins String.uppercase_ascii oai_pdn in
  Alcotest.(check (list string)) "repin" [ "A"; "B"; "C" ] (Pdn.pins repinned)

(* ---------------- cells ---------------- *)

let test_cell_inverter () =
  let inv = Cell.inverter ~p:"P" ~n:"N" in
  Alcotest.(check (list string)) "pins" [ "a" ] (Cell.input_pins inv);
  checki "devices" 2 (Cell.device_count inv);
  checkb "inverting" true (Cell.inverting inv);
  checkb "static family" true (Cell.family inv = Family.Static_cmos);
  Alcotest.(check (list (pair string (float 1e-9)))) "widths"
    [ ("N", 1.); ("P", 1.) ] (Cell.all_widths inv)

let test_cell_nand_nor () =
  let nand3 = Cell.nand ~inputs:3 ~p:"P" ~n:"N" in
  checki "nand3 devices" 6 (Cell.device_count nand3);
  Alcotest.(check (list (pair string (float 1e-9)))) "nand widths"
    [ ("N", 3.); ("P", 3.) ] (Cell.all_widths nand3);
  Alcotest.check_raises "nand1 rejected"
    (Err.Smart_error "Cell.nand: needs >= 2 inputs") (fun () ->
      ignore (Cell.nand ~inputs:1 ~p:"P" ~n:"N"))

let test_cell_passgate () =
  let pg = Cell.Passgate { style = Cell.Cmos_tgate; label = "N2" } in
  Alcotest.(check (list string)) "pins" [ "d"; "s" ] (Cell.input_pins pg);
  checkb "non-inverting" false (Cell.inverting pg);
  checkb "pass family" true (Cell.family pg = Family.Pass);
  (* d is channel-connected: diffusion, not gate. *)
  checkb "d has no gate cap" true (Cell.pin_cap_widths pg "d" = []);
  checkb "d has diffusion" true (Cell.pin_diff_widths pg "d" <> []);
  checkb "s has gate cap" true (Cell.pin_cap_widths pg "s" <> [])

let test_cell_domino () =
  let dom =
    Cell.Domino
      {
        gate_name = "or2";
        pull_down = Pdn.parallel [ leaf "a" "N1"; leaf "b" "N1" ];
        precharge = "P1";
        eval = Some "N2";
        out_p = "P3";
        out_n = "N3";
        keeper = true;
      }
  in
  checkb "D1 family" true (Cell.family dom = Family.Domino_d1);
  checkb "clocked" true (Cell.has_clock dom);
  checkb "non-inverting overall" false (Cell.inverting dom);
  Alcotest.(check (list (pair string (float 1e-9)))) "clock load"
    [ ("P1", 1.); ("N2", 1.) ] (Cell.clocked_widths dom);
  let footless = Cell.Domino { gate_name = "or2"; pull_down = Pdn.parallel [ leaf "a" "N1"; leaf "b" "N1" ];
                               precharge = "P1"; eval = None; out_p = "P3"; out_n = "N3"; keeper = false } in
  checkb "D2 family" true (Cell.family footless = Family.Domino_d2)

let test_cell_rename () =
  let inv = Cell.inverter ~p:"P" ~n:"N" in
  let r = Cell.rename_labels (fun l -> "x." ^ l) inv in
  Alcotest.(check (list string)) "renamed" [ "x.N"; "x.P" ] (Cell.labels r)

let test_cell_dual () =
  let d = Cell.dual oai_pdn in
  (* dual of (a|b).c is (a.b)|c -- depth 2 still, but tops differ *)
  checki "dual devices" 3 (Pdn.device_count d);
  checki "dual depth" 2 (Pdn.max_series_depth d)

(* ---------------- netlists ---------------- *)

let simple_chain () =
  let b = B.create "chain" in
  let i = B.input b "in" in
  let w = B.wire b "w" in
  let o = B.output b "out" in
  B.inst b ~name:"g1" ~cell:(Cell.inverter ~p:"P1" ~n:"N1") ~inputs:[ ("a", i) ] ~out:w ();
  B.inst b ~name:"g2" ~cell:(Cell.inverter ~p:"P2" ~n:"N2") ~inputs:[ ("a", w) ] ~out:o ();
  B.ext_load b o 10.;
  B.freeze b

let test_builder_and_queries () =
  let n = simple_chain () in
  checki "instances" 2 (N.instance_count n);
  checki "devices" 4 (N.device_count n);
  Alcotest.(check (list string)) "labels" [ "N1"; "N2"; "P1"; "P2" ] (N.labels n);
  checkf "total width at 2um" 8. (N.total_width n (fun _ -> 2.));
  checkf "no clock load" 0. (N.clock_load_width n (fun _ -> 2.));
  let w = N.find_net n "w" in
  checki "fanout of w" 1 (N.fanout_count n w);
  checkb "driver exists" true (N.driver n w <> None)

let test_topo_order () =
  let n = simple_chain () in
  let order = List.map (fun (i : N.instance) -> i.N.inst_name) (N.topo_order n) in
  Alcotest.(check (list string)) "order" [ "g1"; "g2" ] order

let test_validation_unconnected_pin () =
  let b = B.create "bad" in
  let _ = B.input b "in" in
  let o = B.output b "out" in
  B.inst b ~name:"g" ~cell:(Cell.nand ~inputs:2 ~p:"P" ~n:"N")
    ~inputs:[ ("a0", 0) ] ~out:o ();
  checkb "freeze rejects" true
    (try
       ignore (B.freeze b);
       false
     with Err.Smart_error _ -> true)

let test_validation_undriven () =
  let b = B.create "bad2" in
  let i = B.input b "in" in
  let w = B.wire b "floating" in
  let o = B.output b "out" in
  B.inst b ~name:"g" ~cell:(Cell.nand ~inputs:2 ~p:"P" ~n:"N")
    ~inputs:[ ("a0", i); ("a1", w) ] ~out:o ();
  checkb "freeze rejects undriven wire" true
    (try
       ignore (B.freeze b);
       false
     with Err.Smart_error _ -> true)

let test_validation_multidriver_static () =
  let b = B.create "bad3" in
  let i = B.input b "in" in
  let o = B.output b "out" in
  B.inst b ~name:"g1" ~cell:(Cell.inverter ~p:"P1" ~n:"N1") ~inputs:[ ("a", i) ] ~out:o ();
  B.inst b ~name:"g2" ~cell:(Cell.inverter ~p:"P2" ~n:"N2") ~inputs:[ ("a", i) ] ~out:o ();
  checkb "two static drivers rejected" true
    (try
       ignore (B.freeze b);
       false
     with Err.Smart_error _ -> true)

let test_shared_bus_allowed () =
  let b = B.create "bus" in
  let i0 = B.input b "in0" and i1 = B.input b "in1" in
  let s0 = B.input b "s0" and s1 = B.input b "s1" in
  let o = B.output b "out" in
  B.inst b ~name:"t0" ~cell:(Cell.Tristate { p_label = "P"; n_label = "N" })
    ~inputs:[ ("d", i0); ("en", s0) ] ~out:o ();
  B.inst b ~name:"t1" ~cell:(Cell.Tristate { p_label = "P"; n_label = "N" })
    ~inputs:[ ("d", i1); ("en", s1) ] ~out:o ();
  checki "valid" 0 (List.length (N.validate (B.freeze b)))

let test_duplicate_net_name () =
  let b = B.create "dup" in
  let _ = B.input b "x" in
  checkb "duplicate rejected" true
    (try
       ignore (B.wire b "x");
       false
     with Err.Smart_error _ -> true)

let test_relabel_per_instance () =
  let n = simple_chain () in
  let r = N.relabel_per_instance n in
  Alcotest.(check (list string)) "per-instance labels"
    [ "g1.N1"; "g1.P1"; "g2.N2"; "g2.P2" ] (N.labels r);
  checkf "width preserved" (N.total_width n (fun _ -> 1.5))
    (N.total_width r (fun _ -> 1.5))

let test_width_by_group () =
  let b = B.create "grp" in
  let i = B.input b "in" in
  let w = B.wire b "w" in
  let o = B.output b "out" in
  B.inst b ~group:"bit0/drv" ~name:"g1" ~cell:(Cell.inverter ~p:"P1" ~n:"N1")
    ~inputs:[ ("a", i) ] ~out:w ();
  B.inst b ~group:"outdrv" ~name:"g2" ~cell:(Cell.inverter ~p:"P2" ~n:"N2")
    ~inputs:[ ("a", w) ] ~out:o ();
  B.ext_load b o 5.;
  let n = B.freeze b in
  let by_group = N.width_by_group n (fun _ -> 2.) in
  Alcotest.(check (list (pair string (float 1e-9)))) "group widths"
    [ ("bit0", 4.); ("outdrv", 4.) ] by_group;
  checkf "groups sum to total" (N.total_width n (fun _ -> 2.))
    (List.fold_left (fun acc (_, w) -> acc +. w) 0. by_group)

let test_clock_autowire () =
  let b = B.create "dom" in
  let i = B.input b "in" in
  let o = B.output b "out" in
  B.inst b ~name:"d"
    ~cell:
      (Cell.Domino
         { gate_name = "buf"; pull_down = leaf "a" "N1"; precharge = "P1";
           eval = Some "N2"; out_p = "P3"; out_n = "N3"; keeper = false })
    ~inputs:[ ("a", i) ] ~out:o ();
  let n = B.freeze b in
  checkb "clock net exists" true (n.N.clock <> None);
  checkf "clock load" 2. (N.clock_load_width n (fun _ -> 1.))

let () =
  Alcotest.run "smart_circuit"
    [
      ( "pdn",
        [
          Alcotest.test_case "queries" `Quick test_pdn_queries;
          Alcotest.test_case "flattening" `Quick test_pdn_flattening;
          Alcotest.test_case "empty rejected" `Quick test_pdn_empty_rejected;
          Alcotest.test_case "chains" `Quick test_pdn_chains;
          Alcotest.test_case "top widths" `Quick test_pdn_top_widths;
          Alcotest.test_case "conduction" `Quick test_pdn_conduction;
          Alcotest.test_case "maps" `Quick test_pdn_maps;
        ] );
      ( "cell",
        [
          Alcotest.test_case "inverter" `Quick test_cell_inverter;
          Alcotest.test_case "nand/nor" `Quick test_cell_nand_nor;
          Alcotest.test_case "passgate" `Quick test_cell_passgate;
          Alcotest.test_case "domino" `Quick test_cell_domino;
          Alcotest.test_case "rename" `Quick test_cell_rename;
          Alcotest.test_case "dual" `Quick test_cell_dual;
        ] );
      ( "netlist",
        [
          Alcotest.test_case "builder and queries" `Quick test_builder_and_queries;
          Alcotest.test_case "topological order" `Quick test_topo_order;
          Alcotest.test_case "unconnected pin" `Quick test_validation_unconnected_pin;
          Alcotest.test_case "undriven net" `Quick test_validation_undriven;
          Alcotest.test_case "static multidriver" `Quick test_validation_multidriver_static;
          Alcotest.test_case "shared bus" `Quick test_shared_bus_allowed;
          Alcotest.test_case "duplicate names" `Quick test_duplicate_net_name;
          Alcotest.test_case "relabel per instance" `Quick test_relabel_per_instance;
          Alcotest.test_case "width by group" `Quick test_width_by_group;
          Alcotest.test_case "clock autowire" `Quick test_clock_autowire;
        ] );
    ]
