(* Unit tests: Smart_blocks (block assembly for §6.4/Table 2). *)

module Blocks = Smart_blocks.Blocks
module Macro = Smart_macros.Macro
module Mux = Smart_macros.Mux
module N = Smart_circuit.Netlist
module Tech = Smart_tech.Tech

let tech = Tech.default
let checkb msg = Alcotest.(check bool) msg
let checki msg = Alcotest.(check int) msg

let test_random_logic_valid () =
  let info = Blocks.random_logic ~seed:5 ~name:"glue" ~gates:80 in
  checki "validates" 0 (List.length (N.validate info.Macro.netlist));
  checkb "gate count respected" true (N.instance_count info.Macro.netlist >= 80);
  checkb "has outputs" true (info.Macro.netlist.N.outputs <> [])

let test_random_logic_deterministic () =
  let a = Blocks.random_logic ~seed:9 ~name:"g" ~gates:40 in
  let b = Blocks.random_logic ~seed:9 ~name:"g" ~gates:40 in
  checki "same structure" (N.device_count a.Macro.netlist)
    (N.device_count b.Macro.netlist);
  let c = Blocks.random_logic ~seed:10 ~name:"g" ~gates:40 in
  checkb "different seeds differ" true
    (N.device_count a.Macro.netlist <> N.device_count c.Macro.netlist
    || N.instance_count a.Macro.netlist <> N.instance_count c.Macro.netlist
    || a.Macro.netlist.N.outputs <> c.Macro.netlist.N.outputs)

let test_random_logic_no_regularity () =
  (* Glue logic uses per-gate labels: label count tracks gate count. *)
  let info = Blocks.random_logic ~seed:5 ~name:"glue" ~gates:50 in
  checkb "many labels" true
    (List.length (N.labels info.Macro.netlist) > 50)

let test_build_tags_components () =
  let block =
    Blocks.build ~name:"b"
      ~macros:[ ("m", Mux.generate Mux.Strongly_mutexed ~n:4) ]
      ~filler:[ Blocks.random_logic ~seed:1 ~name:"g" ~gates:20 ]
  in
  checki "two components" 2 (List.length block.Blocks.components);
  checki "one macro" 1
    (List.length (List.filter (fun c -> c.Blocks.is_macro) block.Blocks.components))

let test_apply_smart_study () =
  let block =
    Blocks.build ~name:"study"
      ~macros:
        [ ("m0", Mux.generate ~ext_load:30. Mux.Domino_unsplit ~n:4);
          ("m1", Smart_macros.Zero_detect.generate ~bits:8 ()) ]
      ~filler:[ Blocks.random_logic ~seed:2 ~name:"g" ~gates:40 ]
  in
  let s = Blocks.apply_smart tech block in
  checkb "macro width fraction in (0,1)" true
    (s.Blocks.macro_width_fraction > 0. && s.Blocks.macro_width_fraction < 1.);
  checkb "macro power fraction in (0,1)" true
    (s.Blocks.macro_power_fraction > 0. && s.Blocks.macro_power_fraction < 1.);
  checkb "width saved" true (s.Blocks.width_saving_pct > 0.);
  checkb "improved <= original" true
    (s.Blocks.improved.Blocks.width <= s.Blocks.original.Blocks.width);
  checki "device count invariant" s.Blocks.original.Blocks.devices
    s.Blocks.improved.Blocks.devices;
  (* Only macros change: glue width identical in both totals. *)
  let glue_orig =
    s.Blocks.original.Blocks.width -. s.Blocks.original.Blocks.macro_width
  in
  let glue_impr =
    s.Blocks.improved.Blocks.width -. s.Blocks.improved.Blocks.macro_width
  in
  Alcotest.(check (float 1e-6)) "glue untouched" glue_orig glue_impr;
  checkb "no timing regressions" true (s.Blocks.timing_regressions = [])

let test_block_savings_scale_with_macro_share () =
  let macros = [ ("m", Mux.generate ~ext_load:30. Mux.Domino_unsplit ~n:4) ] in
  let small_glue =
    Blocks.build ~name:"mostly-macro" ~macros
      ~filler:[ Blocks.random_logic ~seed:3 ~name:"g" ~gates:10 ]
  in
  let big_glue =
    Blocks.build ~name:"mostly-glue" ~macros
      ~filler:[ Blocks.random_logic ~seed:3 ~name:"g" ~gates:300 ]
  in
  let s1 = Blocks.apply_smart tech small_glue in
  let s2 = Blocks.apply_smart tech big_glue in
  checkb "more macro share, more saving" true
    (s1.Blocks.power_saving_pct > s2.Blocks.power_saving_pct)

let () =
  Alcotest.run "smart_blocks"
    [
      ( "random logic",
        [
          Alcotest.test_case "valid" `Quick test_random_logic_valid;
          Alcotest.test_case "deterministic" `Quick test_random_logic_deterministic;
          Alcotest.test_case "no regularity" `Quick test_random_logic_no_regularity;
        ] );
      ( "blocks",
        [
          Alcotest.test_case "component tagging" `Quick test_build_tags_components;
          Alcotest.test_case "apply_smart study" `Slow test_apply_smart_study;
          Alcotest.test_case "macro share scaling" `Slow test_block_savings_scale_with_macro_share;
        ] );
    ]
