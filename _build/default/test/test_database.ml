(* Unit tests: Smart_database (design database and pruning). *)

module Db = Smart_database.Database
module Macro = Smart_macros.Macro

let checkb msg = Alcotest.(check bool) msg
let checki msg = Alcotest.(check int) msg

let test_builtins_cover_section4 () =
  let db = Db.builtins () in
  let kinds = Db.kinds db in
  List.iter
    (fun k -> checkb ("kind " ^ k) true (List.mem k kinds))
    [ "mux"; "incrementor"; "decrementor"; "zero-detect"; "decoder";
      "comparator"; "adder" ];
  checki "six mux topologies" 6
    (List.length (List.filter (fun (e : Db.entry) -> e.Db.kind = "mux") (Db.entries db)))

let test_simple_pruning () =
  let db = Db.builtins () in
  (* Without the one-hot guarantee, strongly-mutexed and domino muxes are
     pruned. *)
  let req = Db.requirements ~strongly_mutexed_selects:false 8 in
  let names =
    List.map (fun (e : Db.entry) -> e.Db.entry_name) (Db.candidates db ~kind:"mux" req)
  in
  checkb "strongly-mutexed pruned" false
    (List.mem "mux/strongly-mutexed-passgate" names);
  checkb "unsplit domino pruned" false (List.mem "mux/unsplit-domino" names);
  checkb "weakly survives" true (List.mem "mux/weakly-mutexed-passgate" names);
  (* Dynamic styles disappear when dynamic logic is disallowed. *)
  let req2 = Db.requirements ~allow_dynamic:false 8 in
  let names2 =
    List.map (fun (e : Db.entry) -> e.Db.entry_name) (Db.candidates db ~kind:"mux" req2)
  in
  checkb "no domino without dynamic" true
    (not (List.exists (fun n -> n = "mux/unsplit-domino" || n = "mux/partitioned-domino") names2))

let test_width_pruning () =
  let db = Db.builtins () in
  let req = Db.requirements 2 in
  let names =
    List.map (fun (e : Db.entry) -> e.Db.entry_name) (Db.candidates db ~kind:"mux" req)
  in
  checkb "encoded only at n=2" true (List.mem "mux/encoded-2to1-passgate" names);
  let req8 = Db.requirements 8 in
  let names8 =
    List.map (fun (e : Db.entry) -> e.Db.entry_name) (Db.candidates db ~kind:"mux" req8)
  in
  checkb "encoded pruned at n=8" false (List.mem "mux/encoded-2to1-passgate" names8)

let test_build_all () =
  let db = Db.builtins () in
  let req = Db.requirements ~ext_load:25. 4 in
  let built = Db.build_all db ~kind:"mux" req in
  checkb "several candidates" true (List.length built >= 4);
  List.iter
    (fun ((_ : Db.entry), (info : Macro.info)) ->
      checki "valid netlist" 0
        (List.length (Smart_circuit.Netlist.validate info.Macro.netlist)))
    built

let test_register_expandability () =
  let db = Db.create () in
  let entry =
    {
      Db.entry_name = "mux/custom";
      kind = "mux";
      description = "designer-provided";
      applicable = (fun _ -> true);
      build =
        (fun req -> Smart_macros.Mux.generate Smart_macros.Mux.Weakly_mutexed ~n:req.Db.bits);
    }
  in
  Db.register db entry;
  checkb "registered" true (Db.find db "mux/custom" <> None);
  checki "one entry" 1 (List.length (Db.entries db));
  (* Replacement by name. *)
  Db.register db { entry with Db.description = "v2" };
  checki "still one" 1 (List.length (Db.entries db));
  (match Db.find db "mux/custom" with
  | Some e -> Alcotest.(check string) "replaced" "v2" e.Db.description
  | None -> Alcotest.fail "missing");
  checkb "usable" true
    ((entry.Db.build (Db.requirements 4)).Macro.bits = 4)

let test_adder_constraints () =
  let db = Db.builtins () in
  checkb "adder at 64" true
    (Db.candidates db ~kind:"adder" (Db.requirements 64) <> []);
  checkb "adder rejects 10" true
    (Db.candidates db ~kind:"adder" (Db.requirements 10) = [])

let () =
  Alcotest.run "smart_database"
    [
      ( "database",
        [
          Alcotest.test_case "builtins" `Quick test_builtins_cover_section4;
          Alcotest.test_case "mutex pruning" `Quick test_simple_pruning;
          Alcotest.test_case "width pruning" `Quick test_width_pruning;
          Alcotest.test_case "build all" `Quick test_build_all;
          Alcotest.test_case "expandability" `Quick test_register_expandability;
          Alcotest.test_case "adder widths" `Quick test_adder_constraints;
        ] );
    ]
