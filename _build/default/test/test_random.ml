(* Property tests over randomly generated netlists: the random-logic
   generator doubles as a netlist fuzzer for the analysis passes. *)

module Blocks = Smart_blocks.Blocks
module Macro = Smart_macros.Macro
module N = Smart_circuit.Netlist
module Paths = Smart_paths.Paths
module Sta = Smart_sta.Sta
module Power = Smart_power.Power
module Baseline = Smart_baseline.Baseline
module Tech = Smart_tech.Tech

let tech = Tech.default

let netlist_of_seed ?(gates = 40) seed =
  (Blocks.random_logic ~seed ~name:(Printf.sprintf "fuzz%d" seed) ~gates)
    .Macro.netlist

let prop_random_netlists_validate =
  QCheck.Test.make ~name:"random netlists validate" ~count:50
    QCheck.(int_range 0 100_000)
    (fun seed -> N.validate (netlist_of_seed seed) = [])

let prop_path_dp_matches_enumeration =
  QCheck.Test.make ~name:"path DP count = enumeration on random DAGs"
    ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let nl = netlist_of_seed ~gates:25 seed in
      match Paths.extract ~reductions:Paths.no_reductions ~max_paths:100_000 nl with
      | paths, stats ->
        float_of_int (List.length paths) = stats.Paths.exhaustive_paths
      | exception Smart_util.Err.Smart_error _ -> true (* blew the budget *))

let prop_reductions_never_grow =
  QCheck.Test.make ~name:"reductions never grow the path set" ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let nl = netlist_of_seed ~gates:25 seed in
      match
        ( Paths.extract ~reductions:Paths.all_reductions nl,
          Paths.extract ~reductions:Paths.no_reductions ~max_paths:100_000 nl )
      with
      | (red, _), (full, _) -> List.length red <= List.length full
      | exception Smart_util.Err.Smart_error _ -> true)

let prop_sta_deterministic =
  QCheck.Test.make ~name:"STA is deterministic" ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let nl = netlist_of_seed seed in
      let d1 = (Sta.analyze tech nl ~sizing:(fun _ -> 2.)).Sta.max_delay in
      let d2 = (Sta.analyze tech nl ~sizing:(fun _ -> 2.)).Sta.max_delay in
      d1 = d2)

let prop_sta_monotone_in_rc =
  QCheck.Test.make ~name:"slower process corner never speeds a netlist up"
    ~count:30
    QCheck.(pair (int_range 0 100_000) (float_range 1.05 2.0))
    (fun (seed, scale) ->
      let nl = netlist_of_seed seed in
      let d t = (Sta.analyze t nl ~sizing:(fun _ -> 2.)).Sta.max_delay in
      d (Tech.scaled ~rc_scale:scale tech) >= d tech -. 1e-9)

let prop_critical_path_nonempty =
  QCheck.Test.make ~name:"critical path exists and ends at the worst output"
    ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let nl = netlist_of_seed seed in
      let sta = Sta.analyze tech nl ~sizing:(fun _ -> 2.) in
      let path = Sta.critical_path sta nl in
      path <> []
      &&
      match List.rev path with
      | ((last : N.instance), _) :: _ ->
        (match sta.Sta.critical_output with
        | Some name -> (N.net nl last.N.out).N.net_name = name
        | None -> false)
      | [] -> false)

let prop_power_monotone_in_activity =
  QCheck.Test.make ~name:"power monotone in activity" ~count:30
    QCheck.(pair (int_range 0 100_000) (pair (float_range 0.05 0.45) (float_range 0.5 1.0)))
    (fun (seed, (a_low, a_high)) ->
      let nl = netlist_of_seed seed in
      let p a = (Power.estimate ~activity:a tech nl ~sizing:(fun _ -> 2.)).Power.total_uw in
      p a_low <= p a_high +. 1e-9)

let prop_baseline_met_target_is_honest =
  QCheck.Test.make ~name:"baseline met_target implies golden <= target"
    ~count:15
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let nl = netlist_of_seed ~gates:20 seed in
      let d0 = (Sta.analyze tech nl ~sizing:(fun _ -> tech.Tech.w_min)).Sta.max_delay in
      let target = 0.8 *. d0 in
      let r = Baseline.size ~target tech nl in
      (not r.Baseline.met_target) || r.Baseline.achieved_delay <= target *. 1.2
      (* margin+grid after the greedy can shift the final timing; the
         greedy's own claim is checked within that window *))

let prop_spice_counts_on_random =
  QCheck.Test.make ~name:"SPICE expansion matches accounting on random logic"
    ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let nl = netlist_of_seed seed in
      let sizing _ = 1.5 in
      Smart_circuit.Spice.device_cards nl ~sizing = N.device_count nl
      && abs_float
           (Smart_circuit.Spice.total_width_of_deck nl ~sizing
           -. N.total_width nl sizing)
         < 1e-6)

let () =
  Alcotest.run "smart_random"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_random_netlists_validate;
            prop_path_dp_matches_enumeration;
            prop_reductions_never_grow;
            prop_sta_deterministic;
            prop_sta_monotone_in_rc;
            prop_critical_path_nonempty;
            prop_power_monotone_in_activity;
            prop_baseline_met_target_is_honest;
            prop_spice_counts_on_random;
          ] );
    ]
