(* Extending the design database (§3(i)): a designer adds their own mux
   topology -- a two-level tree of 2:1 encoded pass-gate muxes -- and lets
   SMART weigh it against the stock §4 topologies.

   Run with:  dune exec examples/custom_macro.exe *)

module Smart = Smart_core.Smart
module B = Smart.Circuit.Builder
module Cell = Smart.Cell

(* A 4:1 mux as a tree of 2:1 encoded stages.  Selects are the encoded
   pair (s0 low bit, s1 high bit); labels follow the stage structure. *)
let tree_mux4 ~ext_load =
  let b = B.create "mux4_tree" in
  let ins = List.init 4 (fun i -> B.input b (Printf.sprintf "in%d" i)) in
  let s0 = B.input b "s0" in
  let s1 = B.input b "s1" in
  let out = B.output b "out" in
  let stage ~group ~labels:(pdrv, ndrv, pass, pout, nout) name a bb sel out =
    (* Encoded 2:1: driver inverters, N-pass / P-pass pair, output driver. *)
    let da = B.wire b (name ^ "_da") in
    let db_ = B.wire b (name ^ "_db") in
    let mid = B.wire b (name ^ "_m") in
    B.inst b ~group ~name:(name ^ "_d0") ~cell:(Cell.inverter ~p:pdrv ~n:ndrv)
      ~inputs:[ ("a", a) ] ~out:da ();
    B.inst b ~group ~name:(name ^ "_d1") ~cell:(Cell.inverter ~p:pdrv ~n:ndrv)
      ~inputs:[ ("a", bb) ] ~out:db_ ();
    B.inst b ~group ~name:(name ^ "_pn")
      ~cell:(Cell.Passgate { style = Cell.N_only; label = pass })
      ~inputs:[ ("d", da); ("s", sel) ] ~out:mid ();
    B.inst b ~group ~name:(name ^ "_pp")
      ~cell:(Cell.Passgate { style = Cell.P_only; label = pass })
      ~inputs:[ ("d", db_); ("s", sel) ] ~out:mid ();
    B.inst b ~group ~name:(name ^ "_o") ~cell:(Cell.inverter ~p:pout ~n:nout)
      ~inputs:[ ("a", mid) ] ~out ()
  in
  let m0 = B.wire b "m0" in
  let m1 = B.wire b "m1" in
  (* select = 1 picks the first data input of an encoded stage. *)
  stage ~group:"l0" ~labels:("P1", "N1", "N2", "P3", "N3") "u0"
    (List.nth ins 0) (List.nth ins 1) s0 m0;
  stage ~group:"l0" ~labels:("P1", "N1", "N2", "P3", "N3") "u1"
    (List.nth ins 2) (List.nth ins 3) s0 m1;
  stage ~group:"l1" ~labels:("P4", "N4", "N5", "P6", "N6") "u2" m0 m1 s1 out;
  B.ext_load b out ext_load;
  Smart.Macro.make ~kind:"mux" ~variant:"tree-of-encoded-2to1" ~bits:4 (B.freeze b)

let () =
  let tech = Smart.Tech.default in
  let db = Smart.Database.builtins () in
  (* The expandability hook: once registered, the custom topology competes
     in every future exploration. *)
  Smart.Database.register db
    {
      Smart.Database.entry_name = "mux/tree-of-encoded";
      kind = "mux";
      description = "designer-provided 2-level tree of encoded 2:1 stages";
      applicable = (fun req -> req.Smart.Database.bits = 4);
      build = (fun req -> tree_mux4 ~ext_load:req.Smart.Database.ext_load);
    };
  (* Sanity: the custom macro computes the right function. *)
  let info = tree_mux4 ~ext_load:20. in
  List.iteri
    (fun sel _ ->
      let ins =
        List.init 4 (fun i -> (Printf.sprintf "in%d" i, i = sel))
        @ [ ("s0", sel mod 2 = 0); ("s1", sel < 2) ]
      in
      let out = List.assoc "out" (Smart.Sim.eval_bits info.Smart.Macro.netlist ins) in
      assert (Smart.Logic.equal out Smart.Logic.V1))
    [ 0; 1; 2; 3 ];
  print_endline "custom macro verified against its truth table";
  let requirements = Smart.Database.requirements ~ext_load:20. 4 in
  let request =
    Smart.Request.make ~kind:"mux" ~bits:4 ~delay:130. ()
    |> Smart.Request.with_tech tech
    |> Smart.Request.with_requirements requirements
  in
  match Smart.run ~db request with
  | Error e -> Printf.printf "no solution: %s\n" (Smart.Error.to_string e)
  | Ok advice ->
    Printf.printf "\nranking with the custom entry competing:\n";
    List.iteri
      (fun rank (c : Smart.Explore.candidate) ->
        Printf.printf "  %d. %-30s %7.1f um\n" (rank + 1) c.Smart.Explore.entry_name
          c.Smart.Explore.outcome.Smart.Sizer.total_width)
      advice.Smart.ranking.Smart.Explore.ranked
