(* Execution-unit bypass network: the §1 motivation -- wide muxes in short
   pipeline stages.  An 8-way bypass mux drives a long result bus (heavy
   load).  We compare the advice under the three §6 cost metrics: pure
   area, power (clock-conscious), and clock load.

   Run with:  dune exec examples/bypass_mux.exe *)

module Smart = Smart_core.Smart

let () =
  let tech = Smart.Tech.default in
  let db = Smart.Database.builtins () in
  (* Long interconnect to the consumers: 80 fF, the regime the paper says
     tri-state muxes exist for. *)
  let requirements = Smart.Database.requirements ~ext_load:80. 8 in
  let spec = Smart.Constraints.spec 180. in
  Printf.printf "bypass mux: 8 inputs, 80 fF bus, %g ps budget\n"
    spec.Smart.Constraints.target_delay;
  List.iter
    (fun metric ->
      Printf.printf "\n--- metric: %s ---\n" (Smart.Explore.metric_to_string metric);
      let request =
        Smart.Request.make ~kind:"mux" ~bits:8 ~metric ()
        |> Smart.Request.with_tech tech
        |> Smart.Request.with_spec spec
        |> Smart.Request.with_requirements requirements
      in
      match Smart.run ~db request with
      | Error e -> Printf.printf "  no solution: %s\n" (Smart.Error.to_string e)
      | Ok advice ->
        List.iteri
          (fun rank (c : Smart.Explore.candidate) ->
            Printf.printf "  %d. %-32s width %7.1f um  clock %6.1f um  power %7.1f uW\n"
              (rank + 1) c.Smart.Explore.entry_name
              c.Smart.Explore.outcome.Smart.Sizer.total_width
              c.Smart.Explore.outcome.Smart.Sizer.clock_load_width
              c.Smart.Explore.power_report.Smart.Power.total_uw)
          advice.Smart.ranking.Smart.Explore.ranked)
    [ Smart.Explore.Area; Smart.Explore.Power; Smart.Explore.Clock_load ]
