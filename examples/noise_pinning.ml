(* Designer control over portions of a macro (§2, §3): on a noisy part of
   the chip, the designer pins the pass-gate devices of a mux to a wide,
   noise-immune size and lets SMART size everything else around that
   decision.

   Run with:  dune exec examples/noise_pinning.exe *)

module Smart = Smart_core.Smart

let () =
  let tech = Smart.Tech.default in
  let info = Smart.Mux.generate ~ext_load:40. Smart.Mux.Strongly_mutexed ~n:8 in
  let nl = info.Smart.Macro.netlist in
  let target = 140. in
  let run label spec =
    match Smart.Sizer.size_typed tech nl spec with
    | Error e ->
      Printf.printf "%-28s failed: %s\n" label (Smart.Error.to_string e)
    | Ok o ->
      Printf.printf "%-28s delay %6.1f ps  width %7.1f um  N2 = %5.2f um\n"
        label o.Smart.Sizer.achieved_delay o.Smart.Sizer.total_width
        (o.Smart.Sizer.sizing_fn "N2")
  in
  Printf.printf "8:1 pass-gate mux, %g ps spec, 40 fF load\n\n" target;
  run "free (SMART sizes all)" (Smart.Constraints.spec target);
  (* The designer demands 10 um pass gates for noise immunity; SMART
     re-balances the drivers around the pinned devices. *)
  run "pinned N2 = 10 um (noisy)" (Smart.Constraints.spec ~pinned:[ ("N2", 10.) ] target);
  run "pinned N2 = 16 um (worse)" (Smart.Constraints.spec ~pinned:[ ("N2", 16.) ] target);
  Printf.printf
    "\nThe pinned solutions cost area -- the price of the designer's noise\n\
     margin -- but SMART still meets the same golden-verified delay spec.\n"
