(* The §6.2 experiment as a library call: the area-delay trade-off curve
   of the dual-rail domino carry-lookahead adder, plus the §5.2 path
   statistics behind the sizing run.

   Run with:  dune exec examples/adder_tradeoff.exe -- [bits]   (default 32) *)

module Smart = Smart_core.Smart

let () =
  let bits = try int_of_string Sys.argv.(1) with _ -> 32 in
  let tech = Smart.Tech.default in
  let info = Smart.Cla_adder.generate ~bits () in
  let nl = info.Smart.Macro.netlist in
  Printf.printf "%s: %d instances, %d transistors\n" (Smart.Macro.name info)
    (Smart.Circuit.instance_count nl)
    (Smart.Circuit.device_count nl);
  let _, stats = Smart.Paths.extract nl in
  Printf.printf
    "paths: %.0f exhaustive -> %d after reduction (%.0fx, %d net classes)\n\n"
    stats.Smart.Paths.exhaustive_paths stats.Smart.Paths.reduced_paths
    stats.Smart.Paths.reduction_factor stats.Smart.Paths.class_count;
  let sweep =
    Smart.Explore.sweep_area_delay ~points:6 ~max_relax:1.35 tech nl
      (Smart.Constraints.spec 1e6)
  in
  match sweep with
  | Error e -> Printf.printf "sweep failed: %s\n" (Smart.Error.to_string e)
  | Ok { Smart.Explore.sweep_curve = []; sweep_skipped; _ } ->
    Printf.printf "sweep: every point infeasible (%d skipped)\n"
      (List.length sweep_skipped)
  | Ok { Smart.Explore.sweep_curve = (d0, a0) :: _ as points; sweep_skipped; _ }
    ->
    Printf.printf "%12s %12s %12s %12s\n" "target ps" "norm delay" "width um"
      "norm area";
    List.iter
      (fun (d, a) ->
        Printf.printf "%12.1f %12.3f %12.0f %12.3f\n" d (d /. d0) a (a /. a0))
      points;
    List.iter
      (fun (d, e) ->
        Printf.printf "%12.1f skipped: %s\n" d (Smart.Error.to_string e))
      sweep_skipped;
    Printf.printf "\n(Figure 6's shape: convex, decreasing as the spec relaxes)\n"
