(* Quickstart: ask SMART for a 4-to-1 mux meeting a 120 ps budget into a
   30 fF load, and print the advised solutions.

   Run with:  dune exec examples/quickstart.exe *)

module Smart = Smart_core.Smart

let () =
  let tech = Smart.Tech.default in
  let db = Smart.Database.builtins () in
  (* The instance's environment: 4 inputs, 30 fF of output load, and the
     selects are guaranteed one-hot by the surrounding control logic. *)
  let requirements =
    Smart.Database.requirements ~ext_load:30. ~strongly_mutexed_selects:true 4
  in
  let spec = Smart.Constraints.spec 120. in
  Printf.printf "SMART %s -- advising a 4:1 mux, %g ps, %g fF\n\n"
    Smart.version spec.Smart.Constraints.target_delay 30.;
  let request =
    Smart.Request.make ~kind:"mux" ~bits:4 ()
    |> Smart.Request.with_tech tech
    |> Smart.Request.with_spec spec
    |> Smart.Request.with_requirements requirements
  in
  match Smart.run ~db request with
  | Error e -> Printf.printf "no solution: %s\n" (Smart.Error.to_string e)
  | Ok advice ->
    Printf.printf "%-34s %9s %9s %9s %8s\n" "topology" "delay ps" "width um"
      "clock um" "power uW";
    List.iter
      (fun (c : Smart.Explore.candidate) ->
        Printf.printf "%-34s %9.1f %9.1f %9.1f %8.1f\n" c.Smart.Explore.entry_name
          c.Smart.Explore.outcome.Smart.Sizer.achieved_delay
          c.Smart.Explore.outcome.Smart.Sizer.total_width
          c.Smart.Explore.outcome.Smart.Sizer.clock_load_width
          c.Smart.Explore.power_report.Smart.Power.total_uw)
      advice.Smart.ranking.Smart.Explore.ranked;
    List.iter
      (fun (name, reason) -> Printf.printf "%-34s rejected: %s\n" name reason)
      advice.Smart.ranking.Smart.Explore.rejected;
    let w = advice.Smart.ranking.Smart.Explore.winner in
    Printf.printf "\nrecommended: %s\n" w.Smart.Explore.entry_name;
    Printf.printf "sized labels:\n";
    List.iter
      (fun (l, width) -> Printf.printf "  %-6s = %5.2f um\n" l width)
      w.Smart.Explore.outcome.Smart.Sizer.sizing
