(* Smart_rewrite: e-graph saturation, extraction, netlist round-trip. *)

module Rewrite = Smart_core.Smart.Rewrite
module Term = Rewrite.Term
module Mux = Smart_core.Smart.Mux
module Zero_detect = Smart_core.Smart.Zero_detect
module Macro = Smart_core.Smart.Macro
module Netlist = Smart_core.Smart.Circuit
module Sim = Smart_core.Smart.Sim
module Lint = Smart_core.Smart.Lint
module Tech = Smart_core.Smart.Tech

let check = Alcotest.(check bool)

(* a. Hash-consing: commutativity and idempotence are structural. *)
let test_term_hashcons () =
  let a = Term.input "a" and b = Term.input "b" in
  let ab = Term.merge Term.And Term.Static [ a; b ] in
  let ba = Term.merge Term.And Term.Static [ b; a ] in
  check "commutative children intern to one term" true (ab == ba);
  let aa = Term.merge Term.Or Term.Static [ a; a ] in
  check "idempotent merge collapses to the child" true (aa == a);
  check "double negation is not collapsed structurally" false
    (Term.not_ (Term.not_ a) == a)

(* b. equivalent: De Morgan over three inputs. *)
let test_equivalent () =
  let a = Term.input "a" and b = Term.input "b" and c = Term.input "c" in
  let lhs = Term.not_ (Term.merge Term.And Term.Static [ a; b; c ]) in
  let rhs =
    Term.merge Term.Or Term.Static
      [ Term.not_ a; Term.not_ b; Term.not_ c ]
  in
  check "demorgan holds" true (Rewrite.equivalent lhs rhs);
  check "not equivalent to complement" false
    (Rewrite.equivalent lhs (Term.not_ rhs))

(* Exhaustive simulation agreement between two netlists sharing an input
   interface (the reference may have more inputs than the candidate —
   rewriting can drop redundant ones; extras are driven too). *)
let sim_agrees reference candidate =
  let input_names nl =
    List.map
      (fun nid -> (Netlist.net nl nid).Netlist.net_name)
      nl.Netlist.inputs
  in
  let ins =
    List.sort_uniq compare (input_names reference @ input_names candidate)
  in
  let n = List.length ins in
  if n > 12 then Alcotest.fail "sim_agrees: too many inputs";
  let ok = ref true in
  for v = 0 to (1 lsl n) - 1 do
    let env =
      List.mapi (fun i x -> (x, v land (1 lsl i) <> 0)) ins
    in
    let restrict nl =
      let names = input_names nl in
      List.filter (fun (x, _) -> List.mem x names) env
    in
    let out nl assignment name =
      match List.assoc_opt name (Sim.eval_bits nl assignment) with
      | Some v -> v
      | None -> Alcotest.fail ("missing output " ^ name)
    in
    List.iter
      (fun nid ->
        let name = (Netlist.net reference nid).Netlist.net_name in
        let a = out reference (restrict reference) name in
        let b = out candidate (restrict candidate) name in
        if a <> b then ok := false)
      reference.Netlist.outputs
  done;
  !ok

(* c. of_netlist/to_netlist round trip on a domino mux: the rendering of
   the abstraction simulates identically to the source. *)
let test_roundtrip_mux () =
  let info = Mux.generate Mux.Domino_unsplit ~n:3 in
  let nl = info.Macro.netlist in
  match Rewrite.of_netlist nl with
  | Error e -> Alcotest.fail e
  | Ok seed ->
    let rendered =
      Rewrite.to_netlist ~name:"mux3_rt" ~inputs:seed.Rewrite.seed_inputs
        ~loads:seed.Rewrite.seed_loads seed.Rewrite.seed_outputs
    in
    check "rendered abstraction simulates like the source" true
      (sim_agrees nl rendered)

(* d. Unsupported families are structured skips, not crashes. *)
let test_unsupported () =
  let info = Mux.generate Mux.Strongly_mutexed ~n:4 in
  match Rewrite.of_netlist info.Macro.netlist with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "pass-gate mux must not abstract"

(* e. explore_netlist on the domino mux: candidates are structurally
   distinct, functionally equivalent (term- and sim-level), and
   lint-clean. *)
let test_explore_netlist () =
  let info = Mux.generate Mux.Domino_unsplit ~n:4 in
  let nl = info.Macro.netlist in
  match Rewrite.explore_netlist nl with
  | Error e -> Alcotest.fail e
  | Ok report ->
    let stats = report.Rewrite.rw_stats in
    check "saturation ran" true (stats.Rewrite.rounds >= 1);
    check "rules fired" true (stats.Rewrite.rule_hits <> []);
    check "extracted something" true (report.Rewrite.rw_extracted <> []);
    let seed_terms = report.Rewrite.rw_seed.Rewrite.seed_outputs in
    List.iter
      (fun (ex : Rewrite.extraction) ->
        List.iter
          (fun (o, t) ->
            check
              (Printf.sprintf "%s/%s equivalent to seed" ex.Rewrite.ex_tag o)
              true
              (Rewrite.equivalent t (List.assoc o seed_terms)))
          ex.Rewrite.ex_terms;
        check (ex.Rewrite.ex_tag ^ " simulates like the source") true
          (sim_agrees nl ex.Rewrite.ex_netlist);
        let rep = Lint.run ~tech:Tech.default ex.Rewrite.ex_netlist in
        check (ex.Rewrite.ex_tag ^ " lint-clean") true (Lint.ok rep))
      report.Rewrite.rw_extracted;
    (* distinctness *)
    let keys =
      List.map
        (fun (ex : Rewrite.extraction) ->
          List.map (fun (_, (t : Term.t)) -> t.Term.tid) ex.Rewrite.ex_terms)
        report.Rewrite.rw_extracted
    in
    check "candidates structurally distinct" true
      (List.length keys = List.length (List.sort_uniq compare keys))

(* f. The zero-detect merge tree regroups: saturation must find at least
   one alternative topology for a static reduction tree. *)
let test_zero_detect_regroups () =
  let info = Zero_detect.generate ~bits:8 () in
  match Rewrite.explore_netlist info.Macro.netlist with
  | Error e -> Alcotest.fail e
  | Ok report ->
    check "found alternative merge trees" true
      (report.Rewrite.rw_extracted <> []);
    List.iter
      (fun (ex : Rewrite.extraction) ->
        check (ex.Rewrite.ex_tag ^ " simulates like the source") true
          (sim_agrees info.Macro.netlist ex.Rewrite.ex_netlist))
      report.Rewrite.rw_extracted

(* g. Random seed terms are deterministic and renderable. *)
let test_random_seed_terms () =
  let t1 = Rewrite.random_seed_term ~seed:7 () in
  let t2 = Rewrite.random_seed_term ~seed:7 () in
  check "same seed, same term" true (t1 == t2);
  let t3 = Rewrite.random_seed_term ~seed:8 () in
  check "different seed, different term" true (t1 != t3);
  let nl = Rewrite.to_netlist ~name:"rand7" [ ("out", t1) ] in
  check "random term renders to a valid netlist" true
    (Netlist.validate nl = [])

let () =
  Alcotest.run "rewrite"
    [
      ( "term",
        [
          Alcotest.test_case "hashcons" `Quick test_term_hashcons;
          Alcotest.test_case "equivalent" `Quick test_equivalent;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "mux" `Quick test_roundtrip_mux;
          Alcotest.test_case "unsupported" `Quick test_unsupported;
        ] );
      ( "explore",
        [
          Alcotest.test_case "mux" `Quick test_explore_netlist;
          Alcotest.test_case "zero-detect" `Quick test_zero_detect_regroups;
        ] );
      ( "random",
        [ Alcotest.test_case "seed-terms" `Quick test_random_seed_terms ] );
    ]
