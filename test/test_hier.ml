(* Hierarchical sizing (Smart_hier): regularity extraction must be
   name-blind and deterministic, the partitioned flow must agree with the
   monolithic reference within tolerance, and `Auto engagement must key
   off netlist size alone. *)

module Smart = Smart_core.Smart
module Tech = Smart.Tech
module Sizer = Smart.Sizer
module Sta = Smart.Sta
module Engine = Smart.Engine
module Hier = Smart.Hier
module Macro = Smart.Macro
module Circuit = Smart.Circuit
module C = Smart.Constraints

let tech = Tech.default
let checkb msg = Alcotest.(check bool) msg
let checki msg = Alcotest.(check int) msg

let datapath ?(tail = 2) columns stages =
  (Smart.Datapath.generate ~columns ~stages ~tail ()).Macro.netlist

(* A target every flow can meet: 80% of the uniform-4x-minimum STA. *)
let easy_target nl =
  let coarse =
    Sta.analyze tech nl ~sizing:(fun _ -> 4. *. tech.Tech.w_min)
  in
  0.8 *. coarse.Sta.max_delay

(* ---- engagement ---- *)

let test_engages () =
  let small = datapath 2 2 in
  let big = datapath 14 16 in
  checkb "`Off never engages" false (Hier.engages `Off big);
  checkb "`Force engages even small" true (Hier.engages `Force small);
  checkb "`Auto skips small" false (Hier.engages `Auto small);
  checkb "`Auto engages big" true (Hier.engages `Auto big)

(* ---- plan shape ---- *)

let test_plan_shape () =
  let nl = datapath 3 6 in
  let p = Hier.plan nl in
  checki "all gates planned" (Circuit.instance_count nl)
    p.Hier.total_instances;
  checkb "found components" true (p.Hier.components > 1);
  checkb "found repeated classes" true (p.Hier.dedup_classes >= 1);
  checkb "dedup covers most gates" true
    (p.Hier.deduped_instances > p.Hier.total_instances / 2);
  (* Every instance lands in exactly one bucket. *)
  checki "dedup + residual = total" p.Hier.total_instances
    (p.Hier.deduped_instances + p.Hier.residual_instances);
  List.iter
    (fun (members, gates) ->
      checkb "class members repeat" true (members >= 2);
      checkb "class reps are real" true (gates >= 1))
    p.Hier.class_sizes

(* ---- canonicalization is name-blind ---- *)

let test_plan_rename_invariant () =
  let nl = datapath 3 5 in
  let renamed =
    Smart.Circuit.rename
      ~net:(fun n -> "zz_" ^ n)
      ~inst:(fun i -> "qq_" ^ i)
      nl
  in
  let p = Hier.plan nl and p' = Hier.plan renamed in
  checki "components invariant" p.Hier.components p'.Hier.components;
  checki "classes invariant" p.Hier.classes p'.Hier.classes;
  checki "dedup classes invariant" p.Hier.dedup_classes p'.Hier.dedup_classes;
  checki "deduped gates invariant" p.Hier.deduped_instances
    p'.Hier.deduped_instances;
  Alcotest.(check (list (pair int int)))
    "class sizes invariant" p.Hier.class_sizes p'.Hier.class_sizes

(* ---- hierarchical result vs monolithic reference ---- *)

let size_both nl target =
  let spec = C.spec target in
  let engine = Engine.create ~workers:2 () in
  let mono =
    match Sizer.size_typed tech nl spec with
    | Ok o -> o
    | Error e -> Alcotest.fail ("mono: " ^ Smart.Error.to_string e)
  in
  let hier =
    match Hier.size ~engine tech nl spec with
    | Ok h -> h
    | Error e -> Alcotest.fail ("hier: " ^ Smart.Error.to_string e)
  in
  (mono, hier)

let test_hier_meets_spec () =
  let nl = datapath 3 6 in
  let target = easy_target nl in
  let mono, hier = size_both nl target in
  let d_h = hier.Hier.sizer.Sizer.achieved_delay in
  let d_m = mono.Sizer.achieved_delay in
  checkb "hier meets the spec" true (d_h <= target *. 1.02);
  checkb "hier advice within 2% of monolithic" true
    (Float.abs (d_h -. d_m) /. d_m <= 0.02);
  checkb "hier solved fewer tasks than gates" true
    (hier.Hier.report.Hier.distinct_tasks
    < hier.Hier.report.Hier.plan.Hier.total_instances);
  checkb "dedup ratio above 1" true (hier.Hier.report.Hier.dedup_ratio > 1.)

let test_hier_sizes_every_label () =
  let nl = datapath 3 4 in
  let _, hier = size_both nl (easy_target nl) in
  let fn = hier.Hier.sizer.Sizer.sizing_fn in
  List.iter
    (fun l ->
      let w = fn l in
      checkb ("label " ^ l ^ " sized") true
        (Float.is_finite w && w >= tech.Tech.w_min *. 0.999))
    (Circuit.labels nl)

(* ---- QCheck: hier ~ mono across generator shapes ---- *)

let qcheck_hier_close =
  QCheck.Test.make ~count:4 ~name:"hier tracks monolithic delay"
    QCheck.(pair (int_range 3 5) (int_range 1 2))
    (fun (stages, cols_half) ->
      let nl = datapath (2 * cols_half) stages in
      let target = easy_target nl in
      let mono, hier = size_both nl target in
      let d_h = hier.Hier.sizer.Sizer.achieved_delay in
      let d_m = mono.Sizer.achieved_delay in
      d_h <= target *. 1.02 && Float.abs (d_h -. d_m) /. d_m <= 0.03)

let () =
  Alcotest.run "smart_hier"
    [
      ( "engage",
        [ Alcotest.test_case "mode thresholds" `Quick test_engages ] );
      ( "plan",
        [
          Alcotest.test_case "shape" `Quick test_plan_shape;
          Alcotest.test_case "rename invariance" `Quick
            test_plan_rename_invariant;
        ] );
      ( "size",
        [
          Alcotest.test_case "meets spec, tracks mono" `Slow
            test_hier_meets_spec;
          Alcotest.test_case "every label sized" `Slow
            test_hier_sizes_every_label;
        ] );
      ( "property",
        [ QCheck_alcotest.to_alcotest qcheck_hier_close ] );
    ]
