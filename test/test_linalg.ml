(* Unit + property tests: Smart_linalg (vectors, matrices, solves). *)

module Vec = Smart_linalg.Vec
module Mat = Smart_linalg.Mat
module Err = Smart_util.Err

let checkf msg = Alcotest.(check (float 1e-9)) msg
let checkb msg = Alcotest.(check bool) msg

let test_vec_basic () =
  let a = Vec.of_list [ 1.; 2.; 3. ] and b = Vec.of_list [ 4.; 5.; 6. ] in
  checkf "dot" 32. (Vec.dot a b);
  checkf "norm2" (sqrt 14.) (Vec.norm2 a);
  checkf "norm_inf" 3. (Vec.norm_inf a);
  Alcotest.(check (list (float 1e-9))) "add" [ 5.; 7.; 9. ] (Vec.to_list (Vec.add a b));
  Alcotest.(check (list (float 1e-9))) "sub" [ -3.; -3.; -3. ] (Vec.to_list (Vec.sub a b));
  Alcotest.(check (list (float 1e-9))) "scale" [ 2.; 4.; 6. ] (Vec.to_list (Vec.scale 2. a))

let test_vec_axpy () =
  let x = Vec.of_list [ 1.; 1. ] and y = Vec.of_list [ 2.; 3. ] in
  Vec.axpy 2. x y;
  Alcotest.(check (list (float 1e-9))) "axpy" [ 4.; 5. ] (Vec.to_list y)

let test_vec_dim_mismatch () =
  Alcotest.check_raises "mismatch"
    (Err.Smart_error "Vec.dot: dimension mismatch (2 vs 3)") (fun () ->
      ignore (Vec.dot (Vec.create 2) (Vec.create 3)))

let test_mat_identity_matvec () =
  let i3 = Mat.identity 3 in
  let v = Vec.of_list [ 1.; 2.; 3. ] in
  Alcotest.(check (list (float 1e-9))) "Iv = v" [ 1.; 2.; 3. ]
    (Vec.to_list (Mat.matvec i3 v))

let test_mat_matmul () =
  let a = Mat.init 2 2 (fun i j -> float_of_int ((2 * i) + j + 1)) in
  (* a = [1 2; 3 4]; a*a = [7 10; 15 22] *)
  let aa = Mat.matmul a a in
  checkf "(0,0)" 7. (Mat.get aa 0 0);
  checkf "(0,1)" 10. (Mat.get aa 0 1);
  checkf "(1,0)" 15. (Mat.get aa 1 0);
  checkf "(1,1)" 22. (Mat.get aa 1 1)

let test_mat_transpose () =
  let a = Mat.init 2 3 (fun i j -> float_of_int ((10 * i) + j)) in
  let t = Mat.transpose a in
  Alcotest.(check (pair int int)) "dims" (3, 2) (Mat.dims t);
  checkf "(2,1)" 12. (Mat.get t 2 1)

let test_cholesky_known () =
  (* [[4,2],[2,3]] = L L^T with L = [[2,0],[1,sqrt 2]] *)
  let a = Mat.init 2 2 (fun i j -> [| [| 4.; 2. |]; [| 2.; 3. |] |].(i).(j)) in
  match Mat.cholesky a with
  | None -> Alcotest.fail "SPD matrix rejected"
  | Some l ->
    checkf "l00" 2. (Mat.get l 0 0);
    checkf "l10" 1. (Mat.get l 1 0);
    checkf "l11" (sqrt 2.) (Mat.get l 1 1)

let test_cholesky_rejects_indefinite () =
  let a = Mat.init 2 2 (fun i j -> if i = j then -1. else 0.) in
  checkb "not SPD" true (Mat.cholesky a = None)

let test_cholesky_solve () =
  let a = Mat.init 2 2 (fun i j -> [| [| 4.; 2. |]; [| 2.; 3. |] |].(i).(j)) in
  let b = Vec.of_list [ 10.; 9. ] in
  match Mat.cholesky_solve a b with
  | None -> Alcotest.fail "solve failed"
  | Some x ->
    let r = Vec.sub (Mat.matvec a x) b in
    checkb "residual tiny" true (Vec.norm_inf r < 1e-9)

let test_ridge_always_returns () =
  (* Singular matrix: ridge regularisation must still produce an answer. *)
  let a = Mat.create 2 2 in
  let x = Mat.solve_spd_ridge a (Vec.of_list [ 1.; 1. ]) in
  checkb "finite" true (Float.is_finite x.(0) && Float.is_finite x.(1))

let test_lu_solve () =
  let a = Mat.init 2 2 (fun i j -> [| [| 0.; 2. |]; [| 3.; 1. |] |].(i).(j)) in
  (* Needs pivoting (a00 = 0). *)
  match Mat.lu_solve a (Vec.of_list [ 4.; 5. ]) with
  | None -> Alcotest.fail "lu failed"
  | Some x ->
    checkf "x0" 1. x.(0);
    checkf "x1" 2. x.(1)

let test_lu_singular () =
  let a = Mat.init 2 2 (fun _ _ -> 1.) in
  checkb "singular detected" true (Mat.lu_solve a (Vec.of_list [ 1.; 1. ]) = None)

let test_rank1_update () =
  let m = Mat.create 2 2 in
  Mat.rank1_update m 2. (Vec.of_list [ 1.; 3. ]);
  checkf "(0,0)" 2. (Mat.get m 0 0);
  checkf "(0,1)" 6. (Mat.get m 0 1);
  checkf "(1,1)" 18. (Mat.get m 1 1)

let test_matvec_into_matches_matvec () =
  let a = Mat.init 3 4 (fun i j -> float_of_int ((3 * i) - j + 1)) in
  let v = Vec.of_list [ 1.; -2.; 0.5; 3. ] in
  let out = Vec.create 3 in
  Mat.matvec_into a v out;
  Alcotest.(check (list (float 1e-12)))
    "matvec_into = matvec"
    (Vec.to_list (Mat.matvec a v))
    (Vec.to_list out)

let test_symv_lower_ignores_upper () =
  (* Symmetric [[2,1],[1,3]] stored with garbage in the upper triangle. *)
  let m = Mat.create 2 2 in
  Mat.set m 0 0 2.;
  Mat.set m 1 0 1.;
  Mat.set m 1 1 3.;
  Mat.set m 0 1 999.;
  let y = Vec.create 2 in
  Mat.symv_lower_into m (Vec.of_list [ 1.; 2. ]) y;
  Alcotest.(check (list (float 1e-12))) "y = Ax" [ 4.; 7. ] (Vec.to_list y)

(* Random arrow-head SPD system in block order, lower triangle filled:
   per-block G G^T + dominance on the diagonal, random coupling strips
   into the border.  Returns the structure and the (lower-valid) matrix. *)
let random_arrowhead rng ~blocks ~maxb ~border =
  let sizes = Array.init blocks (fun _ -> 1 + Smart_util.Rng.int rng maxb) in
  let st = { Smart_linalg.Block.sizes; border } in
  let n = Smart_linalg.Block.dim st in
  let full = Mat.create n n in
  let offs = Array.make (blocks + 1) 0 in
  for i = 0 to blocks - 1 do
    offs.(i + 1) <- offs.(i) + sizes.(i)
  done;
  let nb = offs.(blocks) in
  (* Dense symmetric factor respecting the arrow-head sparsity: a block
     row of G touches only its own block's columns, a border row touches
     everything — so G G^T couples blocks to the border but never block
     to block. *)
  let g = Mat.create n n in
  let bi_of i =
    let b = ref 0 in
    while !b < blocks && i >= offs.(!b + 1) do incr b done;
    !b
  in
  for i = 0 to n - 1 do
    let lo, hi =
      if i < nb then
        let b = bi_of i in
        (offs.(b), offs.(b + 1))
      else (0, n)
    in
    for j = lo to hi - 1 do
      Mat.set g i j (Smart_util.Rng.uniform rng (-1.) 1.)
    done
  done;
  (* full = G G^T + (n+1) I, computed lower-only. *)
  for i = 0 to n - 1 do
    for j = 0 to i do
      let acc = ref (if i = j then float_of_int (n + 1) else 0.) in
      for k = 0 to n - 1 do
        acc := !acc +. (Mat.get g i k *. Mat.get g j k)
      done;
      Mat.set full i j !acc
    done
  done;
  (st, full)

(* The tentpole property: the block Schur solve matches the dense ridge
   solve within 1e-9 on random arrow-head SPD systems. *)
let prop_block_matches_dense =
  QCheck.Test.make ~name:"block Schur solve matches solve_spd_ridge (1e-9)"
    ~count:200
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Smart_util.Rng.create seed in
      let blocks = 1 + Smart_util.Rng.int rng 4 in
      let border = Smart_util.Rng.int rng 4 in
      let st, a = random_arrowhead rng ~blocks ~maxb:4 ~border in
      let n = Smart_linalg.Block.dim st in
      let b = Vec.init n (fun _ -> Smart_util.Rng.uniform rng (-5.) 5.) in
      (* Mirror the lower triangle for the dense reference solve. *)
      let sym = Mat.init n n (fun i j -> Mat.get a (max i j) (min i j)) in
      let dense = Mat.solve_spd_ridge sym b in
      let ws = Smart_linalg.Block.make_ws st in
      let x = Vec.create n in
      Smart_linalg.Block.solve_spd_ridge_into ws a b x;
      Vec.norm_inf (Vec.sub dense x) <= 1e-9 *. Float.max 1. (Vec.norm_inf dense))

(* The block path must survive rank-deficient systems through the shared
   ridge-escalation ladder, like the dense path does. *)
let test_block_ridge_fallback () =
  let st = { Smart_linalg.Block.sizes = [| 2 |]; border = 1 } in
  let a = Mat.create 3 3 in
  let ws = Smart_linalg.Block.make_ws st in
  let x = Vec.create 3 in
  let hint = ref 0. in
  Smart_linalg.Block.solve_spd_ridge_into ~hint ws a (Vec.of_list [ 1.; 1.; 1. ]) x;
  checkb "finite" true (Array.for_all Float.is_finite x);
  checkb "ridge recorded" true (!hint > 0.)

(* Property: random SPD systems solve with small residuals. *)
let prop_spd_solve =
  QCheck.Test.make ~name:"cholesky solves random SPD systems" ~count:100
    QCheck.(pair (int_range 1 8) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Smart_util.Rng.create seed in
      let g = Mat.init n n (fun _ _ -> Smart_util.Rng.uniform rng (-1.) 1.) in
      (* a = g g^T + n*I is SPD. *)
      let a = Mat.matmul g (Mat.transpose g) in
      let a = Mat.add a (Mat.scale (float_of_int n) (Mat.identity n)) in
      let b = Vec.init n (fun _ -> Smart_util.Rng.uniform rng (-5.) 5.) in
      match Mat.cholesky_solve a b with
      | None -> false
      | Some x -> Vec.norm_inf (Vec.sub (Mat.matvec a x) b) < 1e-6)

let prop_lu_matches_cholesky =
  QCheck.Test.make ~name:"lu and cholesky agree on SPD systems" ~count:50
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Smart_util.Rng.create seed in
      let n = 4 in
      let g = Mat.init n n (fun _ _ -> Smart_util.Rng.uniform rng (-1.) 1.) in
      let a = Mat.add (Mat.matmul g (Mat.transpose g)) (Mat.identity n) in
      let b = Vec.init n (fun _ -> Smart_util.Rng.uniform rng (-2.) 2.) in
      match (Mat.cholesky_solve a b, Mat.lu_solve a b) with
      | Some x, Some y -> Vec.norm_inf (Vec.sub x y) < 1e-6
      | _ -> false)

let () =
  Alcotest.run "smart_linalg"
    [
      ( "vec",
        [
          Alcotest.test_case "basics" `Quick test_vec_basic;
          Alcotest.test_case "axpy" `Quick test_vec_axpy;
          Alcotest.test_case "dimension check" `Quick test_vec_dim_mismatch;
        ] );
      ( "mat",
        [
          Alcotest.test_case "identity matvec" `Quick test_mat_identity_matvec;
          Alcotest.test_case "matvec_into" `Quick test_matvec_into_matches_matvec;
          Alcotest.test_case "symv lower-only" `Quick test_symv_lower_ignores_upper;
          Alcotest.test_case "matmul" `Quick test_mat_matmul;
          Alcotest.test_case "transpose" `Quick test_mat_transpose;
          Alcotest.test_case "rank1 update" `Quick test_rank1_update;
        ] );
      ( "solves",
        [
          Alcotest.test_case "cholesky factor" `Quick test_cholesky_known;
          Alcotest.test_case "cholesky rejects indefinite" `Quick
            test_cholesky_rejects_indefinite;
          Alcotest.test_case "cholesky solve" `Quick test_cholesky_solve;
          Alcotest.test_case "ridge fallback" `Quick test_ridge_always_returns;
          Alcotest.test_case "block ridge fallback" `Quick test_block_ridge_fallback;
          Alcotest.test_case "lu with pivoting" `Quick test_lu_solve;
          Alcotest.test_case "lu singular" `Quick test_lu_singular;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_spd_solve; prop_lu_matches_cholesky; prop_block_matches_dense ] );
    ]
