(* Unit + property tests: Smart_posy (monomials, posynomials, log-space). *)

module M = Smart_posy.Monomial
module P = Smart_posy.Posy
module L = Smart_posy.Logspace
module Vec = Smart_linalg.Vec
module Mat = Smart_linalg.Mat
module Err = Smart_util.Err
module Rng = Smart_util.Rng

let checkf msg = Alcotest.(check (float 1e-9)) msg
let checkb msg = Alcotest.(check bool) msg

let env_of l v = try List.assoc v l with Not_found -> Alcotest.fail ("unbound " ^ v)

(* ---------------- monomials ---------------- *)

let test_monomial_construction () =
  let m = M.make 2. [ ("x", 1.); ("y", -2.); ("x", 1.) ] in
  checkf "coeff" 2. (M.coeff m);
  checkf "x exponent merged" 2. (M.degree_of m "x");
  checkf "y exponent" (-2.) (M.degree_of m "y");
  checkf "absent" 0. (M.degree_of m "z")

let test_monomial_rejects_nonpositive () =
  Alcotest.check_raises "zero coeff"
    (Err.Smart_error "Monomial.make: coefficient 0 must be positive") (fun () ->
      ignore (M.make 0. []))

let test_monomial_zero_exponent_dropped () =
  let m = M.make 1. [ ("x", 1.); ("x", -1.) ] in
  checkb "const" true (M.is_const m)

let test_monomial_algebra () =
  let x = M.var "x" and y = M.var "y" in
  let m = M.mul (M.scale 3. x) (M.pow y 2.) in
  let env = env_of [ ("x", 2.); ("y", 3.) ] in
  checkf "3*x*y^2 at (2,3)" 54. (M.eval env m);
  checkf "inverse" (1. /. 54.) (M.eval env (M.inv m));
  checkf "division" 1. (M.eval env (M.div m m))

let test_monomial_subst () =
  (* substitute x := 2*y into x^2 -> 4 y^2 *)
  let m = M.pow (M.var "x") 2. in
  let m' = M.subst "x" (M.make 2. [ ("y", 1.) ]) m in
  checkf "subst" 36. (M.eval (env_of [ ("y", 3.) ]) m')

(* ---------------- posynomials ---------------- *)

let test_posy_merge_like_terms () =
  let p = P.of_monomials [ M.var "x"; M.var "x"; M.const 1. ] in
  Alcotest.(check int) "2 terms after merge" 2 (P.num_terms p);
  checkf "eval" 7. (P.eval (env_of [ ("x", 3.) ]) p)

let test_posy_add_mul () =
  let p = P.add (P.var "x") (P.const 1.) in
  let q = P.mul p p in
  (* (x+1)^2 = x^2 + 2x + 1 *)
  Alcotest.(check int) "3 terms" 3 (P.num_terms q);
  checkf "at x=2" 9. (P.eval (env_of [ ("x", 2.) ]) q)

let test_posy_pow_int () =
  let p = P.add (P.var "x") (P.var "y") in
  checkf "cube" 125. (P.eval (env_of [ ("x", 2.); ("y", 3.) ]) (P.pow_int p 3))

let test_posy_div_monomial () =
  let p = P.add (P.var "x") (P.const 2.) in
  let q = P.div_monomial p (M.var "x") in
  checkf "(x+2)/x at 2" 2. (P.eval (env_of [ ("x", 2.) ]) q)

let test_posy_as_monomial () =
  checkb "single" true (P.as_monomial (P.var "x") <> None);
  checkb "sum is not" true (P.as_monomial (P.add (P.var "x") (P.const 1.)) = None)

let test_posy_subst () =
  let p = P.add (P.var "x") (P.var "y") in
  let p' = P.subst "x" (M.make 2. [ ("y", 1.) ]) p in
  checkf "3y at y=4" 12. (P.eval (env_of [ ("y", 4.) ]) p')

let test_posy_subst_posy () =
  (* x + x^2 with x := (y + 1) -> y+1 + (y+1)^2 *)
  let p = P.add (P.var "x") (P.pow_int (P.var "x") 2) in
  let p' = P.subst_posy "x" (P.add (P.var "y") (P.const 1.)) p in
  checkf "at y=2" 12. (P.eval (env_of [ ("y", 2.) ]) p')

let test_posy_dominates () =
  let big = P.of_monomials [ M.make 3. [ ("x", 1.) ]; M.const 2. ] in
  let small = P.of_monomials [ M.make 1. [ ("x", 1.) ]; M.const 2. ] in
  checkb "big dominates small" true (P.dominates big small);
  checkb "small does not dominate big" false (P.dominates small big);
  checkb "missing term blocks domination" false
    (P.dominates big (P.var "zz"))

let test_posy_drop_tiny () =
  let p = P.of_monomials [ M.const 1.; M.make 1e-9 [ ("x", 1.) ] ] in
  Alcotest.(check int) "tiny dropped" 1 (P.num_terms (P.drop_tiny ~rel:1e-6 p));
  Alcotest.(check int) "kept when significant" 2
    (P.num_terms (P.drop_tiny ~rel:1e-12 p))

let test_posy_vars () =
  let p = P.of_monomials [ M.make 1. [ ("b", 1.); ("a", 2.) ]; M.var "c" ] in
  Alcotest.(check (list string)) "sorted vars" [ "a"; "b"; "c" ] (P.vars p)

(* ---------------- properties ---------------- *)

let random_posy rng nvars =
  let nterms = 1 + Rng.int rng 4 in
  P.of_monomials
    (List.init nterms (fun _ ->
         let c = Rng.uniform rng 0.1 5. in
         let exps =
           List.init (Rng.int rng nvars) (fun _ ->
               ( Printf.sprintf "v%d" (Rng.int rng nvars),
                 Rng.uniform rng (-2.) 2. ))
         in
         M.make c exps))

let random_env rng nvars =
  let vals = Array.init nvars (fun _ -> Rng.uniform rng 0.2 4.) in
  fun v -> vals.(int_of_string (String.sub v 1 (String.length v - 1)))

let prop_eval_add_homomorphism =
  QCheck.Test.make ~name:"eval (p+q) = eval p + eval q" ~count:200
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let p = random_posy rng 3 and q = random_posy rng 3 in
      let env = random_env rng 3 in
      abs_float (P.eval env (P.add p q) -. (P.eval env p +. P.eval env q)) < 1e-6)

let prop_eval_mul_homomorphism =
  QCheck.Test.make ~name:"eval (p*q) = eval p * eval q" ~count:200
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let p = random_posy rng 3 and q = random_posy rng 3 in
      let env = random_env rng 3 in
      let lhs = P.eval env (P.mul p q) and rhs = P.eval env p *. P.eval env q in
      abs_float (lhs -. rhs) /. (abs_float rhs +. 1e-9) < 1e-9)

let prop_dominates_pointwise =
  QCheck.Test.make ~name:"dominates implies pointwise >=" ~count:200
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let p = random_posy rng 3 in
      (* q = p with some coefficients shrunk: p must dominate q. *)
      let q =
        P.of_monomials
          (List.map
             (fun m ->
               M.make (M.coeff m *. Rng.uniform rng 0.2 1.0) (M.exponents m))
             (P.monomials p))
      in
      P.dominates p q
      &&
      let env = random_env rng 3 in
      P.eval env p >= P.eval env q -. 1e-9)

let prop_logspace_value =
  QCheck.Test.make ~name:"logspace value = log (eval)" ~count:200
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let p = random_posy rng 3 in
      let env = random_env rng 3 in
      let idx = L.index_of_vars [ "v0"; "v1"; "v2" ] in
      let f = L.compile idx p in
      let y = Vec.init 3 (fun i -> log (env (Printf.sprintf "v%d" i))) in
      abs_float (L.value f y -. log (P.eval env p)) < 1e-9)

let prop_logspace_gradient_fd =
  QCheck.Test.make ~name:"logspace gradient matches finite differences"
    ~count:100
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let p = random_posy rng 3 in
      let idx = L.index_of_vars [ "v0"; "v1"; "v2" ] in
      let f = L.compile idx p in
      let y = Vec.init 3 (fun _ -> Rng.uniform rng (-1.) 1.) in
      let _, g = L.value_grad f y in
      let h = 1e-6 in
      List.for_all
        (fun i ->
          let yp = Vec.copy y and ym = Vec.copy y in
          yp.(i) <- yp.(i) +. h;
          ym.(i) <- ym.(i) -. h;
          let fd = (L.value f yp -. L.value f ym) /. (2. *. h) in
          abs_float (fd -. g.(i)) < 1e-4)
        [ 0; 1; 2 ])

(* add_weighted_hessian writes the lower triangle only; the upper must
   stay untouched, and the symmetrized matrix must be PSD (logsumexp is
   convex).  Seeding the upper with garbage catches any accidental
   full-matrix write. *)
let prop_logspace_hessian_psd_lower =
  QCheck.Test.make ~name:"logsumexp Hessian is PSD, lower triangle only"
    ~count:100
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let p = random_posy rng 3 in
      let idx = L.index_of_vars [ "v0"; "v1"; "v2" ] in
      let f = L.compile idx p in
      let y = Vec.init 3 (fun _ -> Rng.uniform rng (-1.) 1.) in
      let h = Mat.create 3 3 in
      for i = 0 to 2 do
        for j = i + 1 to 2 do
          Mat.set h i j 999.
        done
      done;
      let _ = L.add_weighted_hessian f y 1. h in
      let upper_untouched = ref true in
      for i = 0 to 2 do
        for j = i + 1 to 2 do
          if Mat.get h i j <> 999. then upper_untouched := false
        done
      done;
      let d = Vec.init 3 (fun _ -> Rng.uniform rng (-1.) 1.) in
      let quad = ref 0. in
      for i = 0 to 2 do
        for j = 0 to 2 do
          let hij = if j <= i then Mat.get h i j else Mat.get h j i in
          quad := !quad +. (d.(i) *. hij *. d.(j))
        done
      done;
      !upper_untouched
      && !quad >= -1e-9
      && List.for_all (fun i -> Mat.get h i i >= -1e-9) [ 0; 1; 2 ])

let () =
  Alcotest.run "smart_posy"
    [
      ( "monomial",
        [
          Alcotest.test_case "construction" `Quick test_monomial_construction;
          Alcotest.test_case "positivity" `Quick test_monomial_rejects_nonpositive;
          Alcotest.test_case "zero exponents" `Quick test_monomial_zero_exponent_dropped;
          Alcotest.test_case "algebra" `Quick test_monomial_algebra;
          Alcotest.test_case "substitution" `Quick test_monomial_subst;
        ] );
      ( "posynomial",
        [
          Alcotest.test_case "like terms merge" `Quick test_posy_merge_like_terms;
          Alcotest.test_case "add/mul" `Quick test_posy_add_mul;
          Alcotest.test_case "integer power" `Quick test_posy_pow_int;
          Alcotest.test_case "monomial division" `Quick test_posy_div_monomial;
          Alcotest.test_case "as_monomial" `Quick test_posy_as_monomial;
          Alcotest.test_case "monomial subst" `Quick test_posy_subst;
          Alcotest.test_case "posynomial subst" `Quick test_posy_subst_posy;
          Alcotest.test_case "dominance" `Quick test_posy_dominates;
          Alcotest.test_case "drop_tiny" `Quick test_posy_drop_tiny;
          Alcotest.test_case "vars" `Quick test_posy_vars;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_eval_add_homomorphism;
            prop_eval_mul_homomorphism;
            prop_dominates_pointwise;
            prop_logspace_value;
            prop_logspace_gradient_fd;
            prop_logspace_hessian_psd_lower;
          ] );
    ]
