(* Robustness at process corners: the whole flow (baseline, sizer, STA,
   power) must behave sanely when the technology's RC products are scaled
   up or down 40% (slow / fast corners), and Smart_corners must produce
   one joint sizing the golden timer confirms at every corner. *)

module Smart = Smart_core.Smart
module Tech = Smart.Tech
module Sizer = Smart.Sizer
module Corners = Smart.Corners
module Engine = Smart.Engine
module C = Smart.Constraints

let checkb msg = Alcotest.(check bool) msg

let corners =
  [ ("fast", Tech.scaled ~rc_scale:0.6 ~name:"fast" Tech.default);
    ("typ", Tech.default);
    ("slow", Tech.scaled ~rc_scale:1.4 ~name:"slow" Tech.default) ]

let test_fo4_ordering () =
  match List.map (fun (_, t) -> Tech.fo4_delay t) corners with
  | [ fast; typ; slow ] ->
    checkb "fast < typ < slow" true (fast < typ && typ < slow)
  | _ -> assert false

let test_sizer_all_corners () =
  let info = Smart.Mux.generate Smart.Mux.Strongly_mutexed ~n:4 in
  let nl = info.Smart.Macro.netlist in
  List.iter
    (fun (name, tech) ->
      match Sizer.minimize_delay_typed tech nl (C.spec 1e6) with
      | Error e -> Alcotest.fail (name ^ ": " ^ Smart.Error.to_string e)
      | Ok md -> (
        let target = 1.25 *. md.Sizer.golden_min in
        match Sizer.size_typed tech nl (C.spec target) with
        | Error e -> Alcotest.fail (name ^ ": " ^ Smart.Error.to_string e)
        | Ok o ->
          checkb (name ^ " meets spec") true
            (o.Sizer.achieved_delay <= target *. 1.03)))
    corners

let test_min_delay_tracks_corner () =
  let info = Smart.Zero_detect.generate ~bits:8 () in
  let nl = info.Smart.Macro.netlist in
  let mins =
    List.map
      (fun (name, tech) ->
        match Sizer.minimize_delay_typed tech nl (C.spec 1e6) with
        | Ok md -> md.Sizer.golden_min
        | Error e -> Alcotest.fail (name ^ ": " ^ Smart.Error.to_string e))
      corners
  in
  match mins with
  | [ fast; typ; slow ] ->
    checkb "corner ordering" true (fast < typ && typ < slow);
    (* RC scaling is roughly linear in delay. *)
    checkb "scaling magnitude sane" true (slow /. fast > 1.5 && slow /. fast < 4.)
  | _ -> assert false

let test_domino_corners () =
  let info = Smart.Mux.generate Smart.Mux.Domino_unsplit ~n:4 in
  let nl = info.Smart.Macro.netlist in
  List.iter
    (fun (name, tech) ->
      match Sizer.minimize_delay_typed tech nl (C.spec 1e6) with
      | Error e -> Alcotest.fail (name ^ ": " ^ Smart.Error.to_string e)
      | Ok md -> (
        let target = 1.3 *. md.Sizer.golden_min in
        match Sizer.size_typed tech nl (C.spec target) with
        | Error e -> Alcotest.fail (name ^ ": " ^ Smart.Error.to_string e)
        | Ok o ->
          checkb (name ^ " precharge ok") true
            (o.Sizer.achieved_precharge <= target *. 1.03)))
    corners

(* ---- Smart_corners: the corner-set abstraction ---- *)

let test_set_construction () =
  let set = Corners.default_set () in
  Alcotest.(check (list string)) "canonical names" [ "fast"; "typ"; "slow" ]
    (Corners.names set);
  checkb "scales ordered" true
    (match Corners.to_list set with
    | [ f; t; s ] ->
      f.Corners.rc_scale < t.Corners.rc_scale
      && t.Corners.rc_scale < s.Corners.rc_scale
    | _ -> false);
  checkb "nominal is typ" true
    ((Corners.nominal set).Corners.corner_name = "typ");
  (match Corners.of_string "fast,typ,slow" with
  | Ok s -> checkb "of_string round-trips" true (Corners.to_string s = "fast,typ,slow")
  | Error e -> Alcotest.fail e);
  (match Corners.of_string "typ,hot:1.6" with
  | Ok s ->
    checkb "custom scale parsed" true
      (List.exists
         (fun (c : Corners.corner) ->
           c.Corners.corner_name = "hot" && c.Corners.rc_scale = 1.6)
         (Corners.to_list s))
  | Error e -> Alcotest.fail e);
  checkb "bad name rejected" true
    (Result.is_error (Corners.of_string "typ,typ"));
  checkb "bad scale rejected" true
    (Result.is_error (Corners.of_string "cold:-1"))

(* One joint sizing must meet the spec at *every* corner of the default
   set (2% acceptance band + verification headroom), with the slow corner
   binding for these RC-dominated macros, and cost at least the width of
   a typical-only sizing. *)
let test_robust_meets_every_corner () =
  let info = Smart.Mux.generate Smart.Mux.Strongly_mutexed ~n:4 in
  let nl = info.Smart.Macro.netlist in
  let set = Corners.default_set () in
  let slow_tech =
    (List.nth (Corners.to_list set) 2).Corners.tech
  in
  match Sizer.minimize_delay_typed slow_tech nl (C.spec 1e6) with
  | Error e -> Alcotest.fail ("slow min-delay: " ^ Smart.Error.to_string e)
  | Ok md -> (
    let target = 1.25 *. md.Sizer.golden_min in
    match Sizer.size_robust_typed set nl (C.spec target) with
    | Error e -> Alcotest.fail ("robust: " ^ Smart.Error.to_string e)
    | Ok ro ->
      Alcotest.(check int) "one report per corner" 3
        (List.length ro.Sizer.per_corner);
      List.iter
        (fun (r : Sizer.corner_report) ->
          checkb (r.Sizer.corner_name ^ " meets spec") true
            (r.Sizer.corner_delay <= target *. 1.03))
        ro.Sizer.per_corner;
      Alcotest.(check string) "slow corner binds" "slow"
        ro.Sizer.binding_corner;
      checkb "outcome reports the binding corner" true
        (ro.Sizer.robust.Sizer.achieved_delay
        = (List.nth ro.Sizer.per_corner 2).Sizer.corner_delay);
      (* Robustness costs width relative to a typical-only sizing. *)
      (match Sizer.size_typed (Corners.nominal set).Corners.tech nl (C.spec target) with
      | Error e -> Alcotest.fail ("typ-only: " ^ Smart.Error.to_string e)
      | Ok typ_only ->
        checkb "robust width >= typ-only width" true
          (ro.Sizer.robust.Sizer.total_width
          >= typ_only.Sizer.total_width *. 0.999));
      (* Independent differential re-timing of the sizer's claims. *)
      let v = Smart.Check.verify_robust set nl (C.spec target) ro in
      checkb "independent re-timing agrees" true v.Smart.Check.reports_agree;
      checkb "binding corner confirmed" true v.Smart.Check.binding_agrees;
      checkb "independently meets spec everywhere" true
        v.Smart.Check.all_meet_spec)

(* Domino macros carry per-corner precharge constraints through the merge;
   the joint sizing must satisfy them at every corner too. *)
let test_robust_domino_precharge () =
  let info = Smart.Mux.generate Smart.Mux.Domino_unsplit ~n:4 in
  let nl = info.Smart.Macro.netlist in
  let set = Corners.default_set () in
  let slow_tech = (List.nth (Corners.to_list set) 2).Corners.tech in
  match Sizer.minimize_delay_typed slow_tech nl (C.spec 1e6) with
  | Error e -> Alcotest.fail ("slow min-delay: " ^ Smart.Error.to_string e)
  | Ok md -> (
    let target = 1.3 *. md.Sizer.golden_min in
    match Sizer.size_robust_typed set nl (C.spec target) with
    | Error e -> Alcotest.fail ("robust: " ^ Smart.Error.to_string e)
    | Ok ro ->
      List.iter
        (fun (r : Sizer.corner_report) ->
          checkb (r.Sizer.corner_name ^ " evaluate ok") true
            (r.Sizer.corner_delay <= target *. 1.03);
          checkb (r.Sizer.corner_name ^ " precharge ok") true
            (r.Sizer.corner_precharge <= target *. 1.03))
        ro.Sizer.per_corner)

(* The engine cache digests the corner set: a typ-only robust entry, a
   3-corner robust entry and a plain single-tech entry for the same
   netlist/spec are three distinct keys, and only an exact repeat hits. *)
let test_engine_cache_corner_sets_distinct () =
  let e = Engine.create ~workers:1 ~cache_capacity:16 () in
  let nl = (Smart.Mux.generate Smart.Mux.Strongly_mutexed ~n:4).Smart.Macro.netlist in
  let spec = C.spec 150. in
  let options = Sizer.default_options in
  ignore (Engine.size e ~options Tech.default nl spec);
  ignore (Engine.size_robust e ~options (Corners.typ_only ()) nl spec);
  ignore (Engine.size_robust e ~options (Corners.default_set ()) nl spec);
  let s = Engine.cache_stats e in
  Alcotest.(check int) "three distinct misses" 3 s.Engine.misses;
  Alcotest.(check int) "no cross-set hits" 0 s.Engine.hits;
  match
    ( Engine.size_robust e ~options (Corners.default_set ()) nl spec,
      Engine.cache_stats e )
  with
  | Ok ro, s2 ->
    Alcotest.(check int) "exact repeat hits" 1 s2.Engine.hits;
    checkb "hit still carries all corners" true
      (List.length ro.Sizer.per_corner = 3)
  | Error e, _ -> Alcotest.fail (Smart.Error.to_string e)

let () =
  Alcotest.run "smart_corners"
    [
      ( "corners",
        [
          Alcotest.test_case "FO4 ordering" `Quick test_fo4_ordering;
          Alcotest.test_case "sizer at all corners" `Slow test_sizer_all_corners;
          Alcotest.test_case "min delay tracks corner" `Slow test_min_delay_tracks_corner;
          Alcotest.test_case "domino at corners" `Slow test_domino_corners;
        ] );
      ( "robust",
        [
          Alcotest.test_case "set construction" `Quick test_set_construction;
          Alcotest.test_case "meets every corner" `Slow
            test_robust_meets_every_corner;
          Alcotest.test_case "domino precharge at corners" `Slow
            test_robust_domino_precharge;
          Alcotest.test_case "engine cache keeps sets apart" `Slow
            test_engine_cache_corner_sets_distinct;
        ] );
    ]
