(* Robustness at process corners: the whole flow (baseline, sizer, STA,
   power) must behave sanely when the technology's RC products are scaled
   up or down 40% (slow / fast corners), and Smart_corners must produce
   one joint sizing the golden timer confirms at every corner. *)

module Smart = Smart_core.Smart
module Tech = Smart.Tech
module Sizer = Smart.Sizer
module Corners = Smart.Corners
module Engine = Smart.Engine
module C = Smart.Constraints

let checkb msg = Alcotest.(check bool) msg

let corners =
  [ ("fast", Tech.scaled ~rc_scale:0.6 ~name:"fast" Tech.default);
    ("typ", Tech.default);
    ("slow", Tech.scaled ~rc_scale:1.4 ~name:"slow" Tech.default) ]

let test_fo4_ordering () =
  match List.map (fun (_, t) -> Tech.fo4_delay t) corners with
  | [ fast; typ; slow ] ->
    checkb "fast < typ < slow" true (fast < typ && typ < slow)
  | _ -> assert false

let test_sizer_all_corners () =
  let info = Smart.Mux.generate Smart.Mux.Strongly_mutexed ~n:4 in
  let nl = info.Smart.Macro.netlist in
  List.iter
    (fun (name, tech) ->
      match Sizer.minimize_delay_typed tech nl (C.spec 1e6) with
      | Error e -> Alcotest.fail (name ^ ": " ^ Smart.Error.to_string e)
      | Ok md -> (
        let target = 1.25 *. md.Sizer.golden_min in
        match Sizer.size_typed tech nl (C.spec target) with
        | Error e -> Alcotest.fail (name ^ ": " ^ Smart.Error.to_string e)
        | Ok o ->
          checkb (name ^ " meets spec") true
            (o.Sizer.achieved_delay <= target *. 1.03)))
    corners

let test_min_delay_tracks_corner () =
  let info = Smart.Zero_detect.generate ~bits:8 () in
  let nl = info.Smart.Macro.netlist in
  let mins =
    List.map
      (fun (name, tech) ->
        match Sizer.minimize_delay_typed tech nl (C.spec 1e6) with
        | Ok md -> md.Sizer.golden_min
        | Error e -> Alcotest.fail (name ^ ": " ^ Smart.Error.to_string e))
      corners
  in
  match mins with
  | [ fast; typ; slow ] ->
    checkb "corner ordering" true (fast < typ && typ < slow);
    (* RC scaling is roughly linear in delay. *)
    checkb "scaling magnitude sane" true (slow /. fast > 1.5 && slow /. fast < 4.)
  | _ -> assert false

let test_domino_corners () =
  let info = Smart.Mux.generate Smart.Mux.Domino_unsplit ~n:4 in
  let nl = info.Smart.Macro.netlist in
  List.iter
    (fun (name, tech) ->
      match Sizer.minimize_delay_typed tech nl (C.spec 1e6) with
      | Error e -> Alcotest.fail (name ^ ": " ^ Smart.Error.to_string e)
      | Ok md -> (
        let target = 1.3 *. md.Sizer.golden_min in
        match Sizer.size_typed tech nl (C.spec target) with
        | Error e -> Alcotest.fail (name ^ ": " ^ Smart.Error.to_string e)
        | Ok o ->
          checkb (name ^ " precharge ok") true
            (o.Sizer.achieved_precharge <= target *. 1.03)))
    corners

(* ---- Smart_corners: the corner-set abstraction ---- *)

let test_set_construction () =
  let set = Corners.default_set () in
  Alcotest.(check (list string)) "canonical names" [ "fast"; "typ"; "slow" ]
    (Corners.names set);
  checkb "scales ordered" true
    (match Corners.to_list set with
    | [ f; t; s ] ->
      f.Corners.rc_scale < t.Corners.rc_scale
      && t.Corners.rc_scale < s.Corners.rc_scale
    | _ -> false);
  checkb "nominal is typ" true
    ((Corners.nominal set).Corners.corner_name = "typ");
  (match Corners.of_string "fast,typ,slow" with
  | Ok s -> checkb "of_string round-trips" true (Corners.to_string s = "fast,typ,slow")
  | Error e -> Alcotest.fail e);
  (match Corners.of_string "typ,hot:1.6" with
  | Ok s ->
    checkb "custom scale parsed" true
      (List.exists
         (fun (c : Corners.corner) ->
           c.Corners.corner_name = "hot" && c.Corners.rc_scale = 1.6)
         (Corners.to_list s))
  | Error e -> Alcotest.fail e);
  checkb "bad name rejected" true
    (Result.is_error (Corners.of_string "typ,typ"));
  checkb "bad scale rejected" true
    (Result.is_error (Corners.of_string "cold:-1"))

(* One joint sizing must meet the spec at *every* corner of the default
   set (2% acceptance band + verification headroom), with the slow corner
   binding for these RC-dominated macros, and cost at least the width of
   a typical-only sizing. *)
let test_robust_meets_every_corner () =
  let info = Smart.Mux.generate Smart.Mux.Strongly_mutexed ~n:4 in
  let nl = info.Smart.Macro.netlist in
  let set = Corners.default_set () in
  let slow_tech =
    (List.nth (Corners.to_list set) 2).Corners.tech
  in
  match Sizer.minimize_delay_typed slow_tech nl (C.spec 1e6) with
  | Error e -> Alcotest.fail ("slow min-delay: " ^ Smart.Error.to_string e)
  | Ok md -> (
    let target = 1.25 *. md.Sizer.golden_min in
    match Sizer.size_robust_typed set nl (C.spec target) with
    | Error e -> Alcotest.fail ("robust: " ^ Smart.Error.to_string e)
    | Ok ro ->
      Alcotest.(check int) "one report per corner" 3
        (List.length ro.Sizer.per_corner);
      List.iter
        (fun (r : Sizer.corner_report) ->
          checkb (r.Sizer.corner_name ^ " meets spec") true
            (r.Sizer.corner_delay <= target *. 1.03))
        ro.Sizer.per_corner;
      Alcotest.(check string) "slow corner binds" "slow"
        ro.Sizer.binding_corner;
      checkb "outcome reports the binding corner" true
        (ro.Sizer.robust.Sizer.achieved_delay
        = (List.nth ro.Sizer.per_corner 2).Sizer.corner_delay);
      (* Robustness costs width relative to a typical-only sizing. *)
      (match Sizer.size_typed (Corners.nominal set).Corners.tech nl (C.spec target) with
      | Error e -> Alcotest.fail ("typ-only: " ^ Smart.Error.to_string e)
      | Ok typ_only ->
        checkb "robust width >= typ-only width" true
          (ro.Sizer.robust.Sizer.total_width
          >= typ_only.Sizer.total_width *. 0.999));
      (* Independent differential re-timing of the sizer's claims. *)
      let v = Smart.Check.verify_robust set nl (C.spec target) ro in
      checkb "independent re-timing agrees" true v.Smart.Check.reports_agree;
      checkb "binding corner confirmed" true v.Smart.Check.binding_agrees;
      checkb "independently meets spec everywhere" true
        v.Smart.Check.all_meet_spec)

(* Domino macros carry per-corner precharge constraints through the merge;
   the joint sizing must satisfy them at every corner too. *)
let test_robust_domino_precharge () =
  let info = Smart.Mux.generate Smart.Mux.Domino_unsplit ~n:4 in
  let nl = info.Smart.Macro.netlist in
  let set = Corners.default_set () in
  let slow_tech = (List.nth (Corners.to_list set) 2).Corners.tech in
  match Sizer.minimize_delay_typed slow_tech nl (C.spec 1e6) with
  | Error e -> Alcotest.fail ("slow min-delay: " ^ Smart.Error.to_string e)
  | Ok md -> (
    let target = 1.3 *. md.Sizer.golden_min in
    match Sizer.size_robust_typed set nl (C.spec target) with
    | Error e -> Alcotest.fail ("robust: " ^ Smart.Error.to_string e)
    | Ok ro ->
      List.iter
        (fun (r : Sizer.corner_report) ->
          checkb (r.Sizer.corner_name ^ " evaluate ok") true
            (r.Sizer.corner_delay <= target *. 1.03);
          checkb (r.Sizer.corner_name ^ " precharge ok") true
            (r.Sizer.corner_precharge <= target *. 1.03))
        ro.Sizer.per_corner)

(* The engine cache digests the corner set: a typ-only robust entry, a
   3-corner robust entry and a plain single-tech entry for the same
   netlist/spec are three distinct keys, and only an exact repeat hits. *)
let test_engine_cache_corner_sets_distinct () =
  let e = Engine.create ~workers:1 ~cache_capacity:16 () in
  let nl = (Smart.Mux.generate Smart.Mux.Strongly_mutexed ~n:4).Smart.Macro.netlist in
  let spec = C.spec 150. in
  let options = Sizer.default_options in
  ignore (Engine.size e ~options Tech.default nl spec);
  ignore (Engine.size_robust e ~options (Corners.typ_only ()) nl spec);
  ignore (Engine.size_robust e ~options (Corners.default_set ()) nl spec);
  let s = Engine.cache_stats e in
  Alcotest.(check int) "three distinct misses" 3 s.Engine.misses;
  Alcotest.(check int) "no cross-set hits" 0 s.Engine.hits;
  match
    ( Engine.size_robust e ~options (Corners.default_set ()) nl spec,
      Engine.cache_stats e )
  with
  | Ok ro, s2 ->
    Alcotest.(check int) "exact repeat hits" 1 s2.Engine.hits;
    checkb "hit still carries all corners" true
      (List.length ro.Sizer.per_corner = 3)
  | Error e, _ -> Alcotest.fail (Smart.Error.to_string e)

(* The default set is a uniform RC-scaled family of its nominal corner,
   so one projected generation pass must serve all three corners. *)
let test_projection_scales_default_set () =
  match Corners.projection_scales (Corners.default_set ()) with
  | None -> Alcotest.fail "default set not recognised as RC-scaled family"
  | Some scales ->
    Alcotest.(check (list (float 1e-9)))
      "corner scales are sqrt rc_ratio"
      [ sqrt 0.6; 1.0; sqrt 1.4 ]
      scales

let test_projection_scales_heterogeneous () =
  (* A corner built on a different base process (here a different beta)
     is not a pure RC excursion — the fast path must refuse it. *)
  let odd_base = { Tech.default with Tech.beta = Tech.default.Tech.beta *. 1.1 } in
  let set =
    Corners.of_corners
      [
        Corners.corner ~name:"typ" ~rc_scale:1.0 ();
        Corners.corner ~base:odd_base ~name:"odd" ~rc_scale:1.4 ();
      ]
  in
  checkb "heterogeneous set rejected" true (Corners.projection_scales set = None)

(* Projection exactness: the single nominal generation pass, projected
   per corner, reproduces the per-corner generated programs — same
   constraint sets, coefficients equal to roundoff.  This is what makes
   generate_robust's fast path safe to take silently. *)
let test_generate_projected_matches_per_corner () =
  let nl = (Smart.Cla_adder.generate ~bits:8 ()).Smart.Macro.netlist in
  let set = Corners.default_set () in
  let spec = C.spec 200. in
  match Corners.generate_projected set nl spec with
  | None -> Alcotest.fail "default set should project"
  | Some projected ->
    List.iter2
      (fun ((corner : Corners.corner), (rp : C.result)) (c : Corners.corner) ->
        Alcotest.(check string) "corner order" c.Corners.corner_name
          corner.Corners.corner_name;
        let rd = C.generate c.Corners.tech nl spec in
        let ineqs (r : C.result) = r.C.problem.Smart_gp.Problem.inequalities in
        Alcotest.(check int)
          (corner.Corners.corner_name ^ " constraint count")
          (List.length (ineqs rd))
          (List.length (ineqs rp));
        let tbl = Hashtbl.create 256 in
        List.iter (fun (n, p) -> Hashtbl.replace tbl n p) (ineqs rd);
        List.iter
          (fun (n, p) ->
            match Hashtbl.find_opt tbl n with
            | None -> Alcotest.failf "%s: projected-only constraint %s"
                        corner.Corners.corner_name n
            | Some q ->
              let mt = Hashtbl.create 32 in
              List.iter
                (fun m ->
                  Hashtbl.replace mt (Smart.Monomial.exponents m)
                    (Smart.Monomial.coeff m))
                (Smart.Posy.monomials q);
              List.iter
                (fun m ->
                  match Hashtbl.find_opt mt (Smart.Monomial.exponents m) with
                  | None -> Alcotest.failf "%s/%s: term mismatch"
                              corner.Corners.corner_name n
                  | Some cd ->
                    let cp = Smart.Monomial.coeff m in
                    if abs_float (cp -. cd) > 1e-12 *. abs_float cd then
                      Alcotest.failf "%s/%s: coeff %.17g vs %.17g"
                        corner.Corners.corner_name n cp cd)
                (Smart.Posy.monomials p))
          (ineqs rp))
      projected
      (Corners.to_list set)

(* The tentpole regression: the structured (bundled / block) solver path
   must hand the sizer the same advice as the dense reference on the
   64-bit adder's 3-corner robust solve. *)
let test_structured_advice_matches_dense () =
  let nl = (Smart.Cla_adder.generate ~bits:64 ()).Smart.Macro.netlist in
  let set = Corners.default_set () in
  let slow_tech = (List.nth (Corners.to_list set) 2).Corners.tech in
  match Sizer.minimize_delay_typed slow_tech nl (C.spec 1e6) with
  | Error e -> Alcotest.fail ("slow min-delay: " ^ Smart.Error.to_string e)
  | Ok md -> (
    let spec = C.spec (1.25 *. md.Sizer.golden_min) in
    let solve structure =
      let options =
        { Sizer.default_options with Sizer.gp_structure = structure }
      in
      match Sizer.size_robust_typed ~options set nl spec with
      | Ok ro -> ro.Sizer.robust
      | Error e -> Alcotest.fail (Smart.Error.to_string e)
    in
    let structured = solve true and dense = solve false in
    checkb "structured path actually bundles" true
      (structured.Sizer.gp_families > 0);
    let max_rel = ref 0. in
    List.iter2
      (fun (l1, w1) (l2, w2) ->
        Alcotest.(check string) "label order" l2 l1;
        let rel = abs_float (w1 -. w2) /. Float.max 1e-12 (abs_float w2) in
        if rel > !max_rel then max_rel := rel)
      structured.Sizer.sizing dense.Sizer.sizing;
    if !max_rel > 1e-6 then
      Alcotest.failf "advice diverges: max rel width diff %.3e" !max_rel;
    match (structured.Sizer.achieved_delay, dense.Sizer.achieved_delay) with
    | a, b when abs_float (a -. b) > 1e-6 *. b ->
      Alcotest.failf "achieved delay diverges: %.6f vs %.6f" a b
    | _ -> ())

let () =
  Alcotest.run "smart_corners"
    [
      ( "projection",
        [
          Alcotest.test_case "default set scales" `Quick
            test_projection_scales_default_set;
          Alcotest.test_case "heterogeneous set refused" `Quick
            test_projection_scales_heterogeneous;
          Alcotest.test_case "projected = per-corner generation" `Quick
            test_generate_projected_matches_per_corner;
          Alcotest.test_case "structured advice = dense (64-bit)" `Slow
            test_structured_advice_matches_dense;
        ] );
      ( "corners",
        [
          Alcotest.test_case "FO4 ordering" `Quick test_fo4_ordering;
          Alcotest.test_case "sizer at all corners" `Slow test_sizer_all_corners;
          Alcotest.test_case "min delay tracks corner" `Slow test_min_delay_tracks_corner;
          Alcotest.test_case "domino at corners" `Slow test_domino_corners;
        ] );
      ( "robust",
        [
          Alcotest.test_case "set construction" `Quick test_set_construction;
          Alcotest.test_case "meets every corner" `Slow
            test_robust_meets_every_corner;
          Alcotest.test_case "domino precharge at corners" `Slow
            test_robust_domino_precharge;
          Alcotest.test_case "engine cache keeps sets apart" `Slow
            test_engine_cache_corner_sets_distinct;
        ] );
    ]
