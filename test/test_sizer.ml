(* Integration-grade unit tests: Smart_sizer (the Figure 4 flow). *)

module Sizer = Smart_sizer.Sizer
module C = Smart_constraints.Constraints
module Cell = Smart_circuit.Cell
module B = Smart_circuit.Netlist.Builder
module Mux = Smart_macros.Mux
module Macro = Smart_macros.Macro
module Sta = Smart_sta.Sta
module Tech = Smart_tech.Tech

let tech = Tech.default
let checkb msg = Alcotest.(check bool) msg

let chain () =
  let b = B.create "chain" in
  let i = B.input b "in" in
  let w1 = B.wire b "w1" in
  let w2 = B.wire b "w2" in
  let o = B.output b "out" in
  B.inst b ~name:"g1" ~cell:(Cell.inverter ~p:"P1" ~n:"N1") ~inputs:[ ("a", i) ] ~out:w1 ();
  B.inst b ~name:"g2" ~cell:(Cell.inverter ~p:"P2" ~n:"N2") ~inputs:[ ("a", w1) ] ~out:w2 ();
  B.inst b ~name:"g3" ~cell:(Cell.inverter ~p:"P3" ~n:"N3") ~inputs:[ ("a", w2) ] ~out:o ();
  B.ext_load b o 100.;
  B.freeze b

let size_ok nl spec =
  match Sizer.size_typed tech nl spec with
  | Ok o -> o
  | Error e -> Alcotest.fail (Smart_util.Err.to_string e)

let test_meets_specification () =
  let nl = chain () in
  let o = size_ok nl (C.spec 80.) in
  checkb "golden delay within spec" true (o.Sizer.achieved_delay <= 80. *. 1.03);
  checkb "converged" true o.Sizer.converged;
  (* The reported sizing reproduces the reported delay. *)
  let sta = Sta.analyze tech nl ~sizing:o.Sizer.sizing_fn in
  Alcotest.(check (float 1e-6)) "delay reproducible" o.Sizer.achieved_delay
    sta.Sta.max_delay

let test_tighter_spec_costs_more () =
  let nl = chain () in
  let fast = size_ok nl (C.spec 60.) in
  let slow = size_ok nl (C.spec 110.) in
  checkb "tighter spec needs more width" true
    (fast.Sizer.total_width > slow.Sizer.total_width *. 1.05)

let test_widths_within_bounds () =
  let nl = chain () in
  let o = size_ok nl (C.spec 75.) in
  List.iter
    (fun (_, w) ->
      checkb "within device bounds" true
        (w >= tech.Tech.w_min -. 1e-9 && w <= tech.Tech.w_max +. 1e-9))
    o.Sizer.sizing

let test_infeasible_spec () =
  let nl = chain () in
  checkb "absurd target rejected" true
    (match Sizer.size_typed tech nl (C.spec 1.) with Error _ -> true | Ok _ -> false)

let test_minimize_delay () =
  let nl = chain () in
  match Sizer.minimize_delay_typed tech nl (C.spec 1e6) with
  | Error e -> Alcotest.fail (Smart_util.Err.to_string e)
  | Ok md ->
    checkb "positive" true (md.Sizer.golden_min > 5.);
    checkb "model and golden same ballpark" true
      (md.Sizer.model_min /. md.Sizer.golden_min > 0.5
      && md.Sizer.model_min /. md.Sizer.golden_min < 2.);
    (* A relaxed spec must be feasible. *)
    let o = size_ok nl (C.spec (1.3 *. md.Sizer.golden_min)) in
    checkb "meets relaxed" true
      (o.Sizer.achieved_delay <= 1.3 *. md.Sizer.golden_min *. 1.03)

let test_min_delay_hint_equivalence () =
  let nl = chain () in
  match Sizer.minimize_delay_typed tech nl (C.spec 1e6) with
  | Error e -> Alcotest.fail (Smart_util.Err.to_string e)
  | Ok md ->
    let spec = C.spec (1.25 *. md.Sizer.golden_min) in
    let without = size_ok nl spec in
    let options =
      { Sizer.default_options with Sizer.min_delay_hint = Some md.Sizer.model_min }
    in
    (match Sizer.size_typed ~options tech nl spec with
    | Error e -> Alcotest.fail (Smart_util.Err.to_string e)
    | Ok with_hint ->
      checkb "hint does not change the answer materially" true
        (abs_float (with_hint.Sizer.total_width -. without.Sizer.total_width)
         /. without.Sizer.total_width
        < 0.05))

let test_domino_macro_sizing () =
  let info = Mux.generate Mux.Domino_unsplit ~n:8 in
  let nl = info.Macro.netlist in
  match Sizer.minimize_delay_typed tech nl (C.spec 1e6) with
  | Error e -> Alcotest.fail (Smart_util.Err.to_string e)
  | Ok md ->
    let target = 1.25 *. md.Sizer.golden_min in
    let o = size_ok nl (C.spec target) in
    checkb "meets evaluate budget" true (o.Sizer.achieved_delay <= target *. 1.03);
    checkb "meets precharge budget" true
      (o.Sizer.achieved_precharge <= target *. 1.03);
    checkb "clock load positive" true (o.Sizer.clock_load_width > 0.)

let test_objective_changes_solution () =
  let info = Mux.generate Mux.Domino_unsplit ~n:8 in
  let nl = info.Macro.netlist in
  match Sizer.minimize_delay_typed tech nl (C.spec 1e6) with
  | Error e -> Alcotest.fail (Smart_util.Err.to_string e)
  | Ok md ->
    let spec = C.spec (1.4 *. md.Sizer.golden_min) in
    let area = size_ok nl spec in
    let options =
      { Sizer.default_options with Sizer.objective = C.Clock_load }
    in
    (match Sizer.size_typed ~options tech nl spec with
    | Error e -> Alcotest.fail (Smart_util.Err.to_string e)
    | Ok clock ->
      checkb "clock objective trades clock for area" true
        (clock.Sizer.clock_load_width <= area.Sizer.clock_load_width *. 1.05))

let test_sizing_preserves_function () =
  (* Sizing never edits structure: simulation results are unchanged. *)
  let info = Mux.generate Mux.Strongly_mutexed ~n:4 in
  let nl = info.Macro.netlist in
  let _ = size_ok nl (C.spec 120.) in
  let ins =
    List.init 4 (fun i -> (Printf.sprintf "in%d" i, i mod 2 = 0))
    @ List.init 4 (fun i -> (Printf.sprintf "s%d" i, i = 2))
  in
  let out = List.assoc "out" (Smart_sim.Sim.eval_bits nl ins) in
  checkb "function intact" true (Smart_sim.Logic.equal out Smart_sim.Logic.V1)

let () =
  Alcotest.run "smart_sizer"
    [
      ( "flow",
        [
          Alcotest.test_case "meets specification" `Quick test_meets_specification;
          Alcotest.test_case "tighter costs more" `Quick test_tighter_spec_costs_more;
          Alcotest.test_case "bounds respected" `Quick test_widths_within_bounds;
          Alcotest.test_case "infeasible detected" `Quick test_infeasible_spec;
          Alcotest.test_case "minimize delay" `Quick test_minimize_delay;
          Alcotest.test_case "hint equivalence" `Quick test_min_delay_hint_equivalence;
        ] );
      ( "families",
        [
          Alcotest.test_case "domino macro" `Quick test_domino_macro_sizing;
          Alcotest.test_case "objective switch" `Quick test_objective_changes_solution;
          Alcotest.test_case "function preserved" `Quick test_sizing_preserves_function;
        ] );
    ]
