(* Smart_absint tests: the interval domain, the soundness gauntlet
   (intervals must enclose every solved optimum and never certify a
   feasible program), presolve equivalence (the reduced program advises
   identically), and the engine fast-fail regression (a certified
   infeasible spec is rejected before any GP solve runs). *)

module Smart = Smart_core.Smart
module Absint = Smart.Absint
module Interval = Smart.Interval
module C = Smart.Constraints
module Gp = Smart.Gp
module Gen = Smart.Check_gen
module Sta = Smart.Sta
module Tech = Smart.Tech
module Sizer = Smart.Sizer
module Engine = Smart.Engine
module Corners = Smart.Corners
module Err = Smart_util.Err

let tech = Tech.default
let checkb msg = Alcotest.(check bool) msg
let checki msg = Alcotest.(check int) msg

(* ---------------- interval domain ---------------- *)

let test_interval_linear_roundtrip () =
  let iv = Interval.of_linear 0.25 12.5 in
  checkb "lo" true (abs_float (Interval.lo_linear iv -. 0.25) < 1e-12);
  checkb "hi" true (abs_float (Interval.hi_linear iv -. 12.5) < 1e-12);
  checkb "point width" true (Interval.width (Interval.point 3.) = 0.);
  checkb "top is unbounded" true (Interval.width Interval.top = infinity)

let test_interval_add_is_product () =
  let a = Interval.of_linear 2. 3. and b = Interval.of_linear 5. 7. in
  let p = Interval.add a b in
  checkb "product lo" true (abs_float (Interval.lo_linear p -. 10.) < 1e-9);
  checkb "product hi" true (abs_float (Interval.hi_linear p -. 21.) < 1e-9)

let test_interval_scale_negative_flips () =
  let a = Interval.of_linear 2. 8. in
  let inv = Interval.scale (-1.) a in
  checkb "1/x lo" true (abs_float (Interval.lo_linear inv -. 0.125) < 1e-12);
  checkb "1/x hi" true (abs_float (Interval.hi_linear inv -. 0.5) < 1e-12)

let interval_lse_matches_naive =
  QCheck.Test.make ~name:"lse matches naive log-sum-exp" ~count:500
    QCheck.(list_of_size Gen.(return 4) (float_range (-20.) 20.))
    (fun xs ->
      QCheck.assume (xs <> []);
      let xs = Array.of_list xs in
      let naive =
        log (Array.fold_left (fun acc x -> acc +. exp x) 0. xs)
      in
      abs_float (Interval.lse xs -. naive) < 1e-9 *. (1. +. abs_float naive))

let test_log_sub_stable () =
  (* Near-cancellation: log(e^b - e^s) with s close to b. *)
  let b = 10. and s = 10. -. 1e-9 in
  let d = Interval.log_sub b s in
  checkb "finite under near-cancellation" true
    (d > neg_infinity && d < b);
  checkb "non-positive difference collapses" true
    (Interval.log_sub 1. 2. = neg_infinity)

(* ---------------- soundness gauntlet ---------------- *)

(* For every generated netlist: analyze the fixed-budget program, solve
   it, and require (a) a certificate is never contradicted by an Optimal
   solve, (b) an Optimal solve's objective and variable assignment lie
   inside the proven intervals, (c) the min-delay floor never exceeds
   the golden STA's measured delay at an in-bounds operating point. *)
let soundness_one ~gates seed =
  let nl = Gen.netlist ~gates ~seed () in
  let spec = C.spec 400. in
  let g = C.generate tech nl spec in
  let a = Absint.analyze g.C.problem in
  (match (a.Absint.certificate, Gp.solve g.C.problem) with
  | Some c, Ok sol ->
    if sol.Gp.status = Gp.Optimal then
      Alcotest.failf "seed %d: certified infeasible (%s) yet solved Optimal"
        seed c.Absint.detail
  | _, Error _ | None, Ok _ -> ());
  (match Gp.solve g.C.problem with
  | Error _ -> ()
  | Ok sol when sol.Gp.status <> Gp.Optimal -> ()
  | Ok sol ->
    let lo = Interval.lo_linear a.Absint.objective in
    if sol.Gp.objective_value < lo *. (1. -. 1e-6) then
      Alcotest.failf "seed %d: optimum %.6g beats proven floor %.6g" seed
        sol.Gp.objective_value lo;
    List.iter
      (fun (name, v) ->
        match Absint.var_interval a name with
        | None -> ()
        | Some iv ->
          if not (Interval.contains iv (log v)) then
            Alcotest.failf "seed %d: solved %s=%.6g escapes [%.6g, %.6g]"
              seed name v (Interval.lo_linear iv) (Interval.hi_linear iv))
      sol.Gp.values);
  (* Golden enclosure: the proven model-delay floor is a lower bound
     over the whole box, so no in-box sizing — here the gauntlet's
     deterministic operating point — can be measured faster (small
     tolerance for golden-vs-model slope handoff). *)
  let md = C.generate_min_delay tech nl spec in
  let mda = Absint.analyze md.C.problem in
  match Absint.var_interval mda C.delay_variable with
  | None -> Alcotest.failf "seed %d: min-delay program lost %s" seed
              C.delay_variable
  | Some iv ->
    let floor = Interval.lo_linear iv in
    let golden =
      (Sta.analyze tech nl ~sizing:(Gen.sizing ~seed nl)).Sta.max_delay
    in
    if golden > 0. && floor > golden *. 1.05 then
      Alcotest.failf "seed %d: floor %.2f ps above golden %.2f ps" seed
        floor golden

let test_soundness_gauntlet () =
  for seed = 1 to 40 do
    soundness_one ~gates:10 seed
  done

(* ---------------- presolve equivalence ---------------- *)

let rel_diff a b = abs_float (a -. b) /. max 1e-30 (max (abs_float a) (abs_float b))

let solve_optimal name problem =
  match Gp.solve problem with
  | Error e -> Alcotest.failf "%s: solve failed: %s" name e
  | Ok sol ->
    if sol.Gp.status <> Gp.Optimal then Alcotest.failf "%s: not Optimal" name;
    sol

(* The reduced program must advise identically: same objective value and
   the same sizing, to solver tolerance. *)
let assert_reduction_equivalent name (problem : Smart.Gp_problem.t) =
  let a = Absint.analyze problem in
  checkb (name ^ ": no certificate") true (a.Absint.certificate = None);
  let red = Absint.reduce ~tighten:true a in
  let full = solve_optimal (name ^ " full") problem in
  let small = solve_optimal (name ^ " reduced") red.Absint.reduced in
  let obj_diff = rel_diff full.Gp.objective_value small.Gp.objective_value in
  checkb
    (Printf.sprintf "%s: objective within 1e-6 (rel diff %.3g)" name obj_diff)
    true (obj_diff <= 1e-6);
  let tbl = Hashtbl.create 64 in
  List.iter (fun (n, v) -> Hashtbl.replace tbl n v) small.Gp.values;
  List.iter
    (fun (n, v) ->
      match Hashtbl.find_opt tbl n with
      | None -> Alcotest.failf "%s: reduced program lost variable %s" name n
      | Some v' ->
        if rel_diff v v' > 1e-4 then
          Alcotest.failf "%s: %s diverged %.8g vs %.8g" name n v v')
    full.Gp.values;
  red

let test_presolve_adder64 () =
  let nl = (Smart.Cla_adder.generate ~bits:64 ()).Smart.Macro.netlist in
  let g = C.generate tech nl (C.spec 400.) in
  let red = assert_reduction_equivalent "adder64" g.C.problem in
  checki "names preserved" red.Absint.total
    (List.length red.Absint.dropped + red.Absint.kept)

(* 3-corner merged rot4: cross-corner dominance must retire a material
   slice of the merged constraint set — the BENCH_absint acceptance
   criterion, pinned here as a regression. *)
let test_presolve_rot4_merged () =
  let nl = (Smart.Shifter.generate ~bits:4 ()).Smart.Macro.netlist in
  let m =
    Corners.generate_robust (Corners.default_set ()) nl (C.spec 400.)
  in
  let red =
    assert_reduction_equivalent "rot4 merged" m.Corners.generated.C.problem
  in
  let pct = Absint.drop_pct red in
  checkb
    (Printf.sprintf "merged 3-corner drop >= 10%% (got %.1f%%)" pct)
    true (pct >= 10.);
  (* Every drop is explainable in original terms. *)
  List.iter
    (fun (n, reason) ->
      match reason with
      | Absint.Slack -> ()
      | Absint.Dominated _ -> (
        match Absint.implied_by red n with
        | Some _ -> ()
        | None -> Alcotest.failf "dropped %s has no implied_by witness" n))
    red.Absint.dropped

(* ---------------- fast-fail regression ---------------- *)

(* A spec whose slope budget is provably unreachable must be rejected
   with a structured certificate BEFORE any GP solve runs: the trace may
   carry analysis spans but no gp.solve span. *)
let test_fast_fail_no_gp_solve () =
  let nl = (Smart.Mux.generate Smart.Mux.Strongly_mutexed ~n:4).Smart.Macro.netlist in
  let spec = C.spec ~max_slope:1e-4 400. in
  let sink, drain = Engine.Trace.memory () in
  let engine = Engine.create ~workers:1 ~sink () in
  (match Engine.size engine ~options:Sizer.default_options tech nl spec with
  | Error (Err.Infeasible_spec _) -> ()
  | Error e -> Alcotest.failf "wrong error class: %s" (Err.to_string e)
  | Ok _ -> Alcotest.fail "impossible slope budget was accepted");
  let gp_spans =
    List.filter
      (function Engine.Trace.Gp_solve _ -> true | _ -> false)
      (drain ())
  in
  checki "no gp.solve span on the fast-fail path" 0 (List.length gp_spans)

(* Turning the gate off restores the old behaviour: the solver itself
   reports the infeasibility (or the sizer fails to meet the slope), but
   only after doing GP work — the latency contrast the bench measures. *)
let test_gate_off_still_fails () =
  let nl = (Smart.Mux.generate Smart.Mux.Strongly_mutexed ~n:4).Smart.Macro.netlist in
  let spec = C.spec ~max_slope:1e-4 400. in
  let options = { Sizer.default_options with Sizer.absint = false } in
  match Sizer.size_typed ~options tech nl spec with
  | Ok _ -> Alcotest.fail "impossible slope budget was accepted"
  | Error _ -> ()

(* The infeasibility helper renders the same certificate the analysis
   carries, as a structured error. *)
let test_infeasibility_helper () =
  let nl = (Smart.Mux.generate Smart.Mux.Strongly_mutexed ~n:4).Smart.Macro.netlist in
  let g = C.generate tech nl (C.spec ~max_slope:1e-4 400.) in
  match
    Absint.infeasibility
      ~options:(Absint.sizer_options ~robust:false)
      ~target_ps:400. g.C.problem
  with
  | Some (Err.Infeasible_spec _) -> ()
  | Some e -> Alcotest.failf "wrong error: %s" (Err.to_string e)
  | None -> Alcotest.fail "no certificate for an impossible slope budget"

let () =
  Alcotest.run "smart_absint"
    [
      ( "interval",
        [
          Alcotest.test_case "linear roundtrip" `Quick
            test_interval_linear_roundtrip;
          Alcotest.test_case "add is product" `Quick test_interval_add_is_product;
          Alcotest.test_case "negative scale flips" `Quick
            test_interval_scale_negative_flips;
          QCheck_alcotest.to_alcotest interval_lse_matches_naive;
          Alcotest.test_case "log_sub stability" `Quick test_log_sub_stable;
        ] );
      ( "soundness",
        [ Alcotest.test_case "gauntlet" `Slow test_soundness_gauntlet ] );
      ( "presolve",
        [
          Alcotest.test_case "adder64 equivalence" `Slow test_presolve_adder64;
          Alcotest.test_case "rot4 merged drop" `Slow test_presolve_rot4_merged;
        ] );
      ( "fast-fail",
        [
          Alcotest.test_case "no gp.solve span" `Quick test_fast_fail_no_gp_solve;
          Alcotest.test_case "gate off still fails" `Quick
            test_gate_off_still_fails;
          Alcotest.test_case "infeasibility helper" `Quick
            test_infeasibility_helper;
        ] );
    ]
