(* Functional + structural tests for the second wave of §2(a) macros:
   barrel rotators (shifters), one-hot encoders and register-file read
   paths — plus the §2 designer-pinning feature of the constraint
   generator. *)

module Macro = Smart_macros.Macro
module Shifter = Smart_macros.Shifter
module Encoder = Smart_macros.Encoder
module Regfile = Smart_macros.Regfile
module N = Smart_circuit.Netlist
module Sim = Smart_sim.Sim
module Logic = Smart_sim.Logic
module Rng = Smart_util.Rng
module C = Smart_constraints.Constraints
module Sizer = Smart_sizer.Sizer
module Tech = Smart_tech.Tech

let tech = Tech.default
let checkb msg = Alcotest.(check bool) msg
let checki msg = Alcotest.(check int) msg

let bit v i = (v lsr i) land 1 = 1
let bus base n v = List.init n (fun i -> (Printf.sprintf "%s%d" base i, bit v i))

let read_bus outs base n =
  List.fold_left
    (fun acc i ->
      match Logic.to_bool (List.assoc (Printf.sprintf "%s%d" base i) outs) with
      | Some true -> acc lor (1 lsl i)
      | Some false -> acc
      | None -> Alcotest.fail "X on output")
    0
    (List.init n (fun i -> i))

(* ---------------- shifter / rotator ---------------- *)

let test_rotator_exhaustive bits () =
  let info = Shifter.generate ~bits () in
  let nl = info.Macro.netlist in
  let n_stages = Shifter.stages ~bits in
  for v = 0 to min 255 ((1 lsl bits) - 1) do
    for shamt = 0 to bits - 1 do
      let ins =
        bus "in" bits v
        @ List.init n_stages (fun k -> (Printf.sprintf "s%d" k, bit shamt k))
      in
      let outs = Sim.eval_bits nl ins in
      checki
        (Printf.sprintf "rol %d by %d" v shamt)
        (Shifter.spec ~bits ~shamt v)
        (read_bus outs "out" bits)
    done
  done

let test_rotator_structure () =
  let info = Shifter.generate ~bits:16 () in
  let nl = info.Macro.netlist in
  checki "validates" 0 (List.length (N.validate nl));
  (* 4 stages x 5 label classes: width-independent label count. *)
  let l16 = List.length (N.labels nl) in
  let l8 = List.length (N.labels (Shifter.generate ~bits:8 ()).Macro.netlist) in
  checkb "labels grow with stages only" true (l16 = l8 + 5)

let test_rotator_rejects_non_pow2 () =
  checkb "rejects 6" true
    (try ignore (Shifter.generate ~bits:6 ()); false
     with Smart_util.Err.Smart_error _ -> true)

(* ---------------- encoder ---------------- *)

let test_encoder_exhaustive out_bits () =
  let info = Encoder.generate ~out_bits () in
  let nl = info.Macro.netlist in
  let n_in = 1 lsl out_bits in
  for line = 0 to n_in - 1 do
    let ins = List.init n_in (fun i -> (Printf.sprintf "in%d" i, i = line)) in
    let outs = Sim.eval_bits nl ins in
    checki (Printf.sprintf "line %d" line) (Encoder.spec ~out_bits line)
      (read_bus outs "out" out_bits)
  done

let test_encoder_validates () =
  let info = Encoder.generate ~out_bits:6 () in
  checki "validates" 0 (List.length (N.validate info.Macro.netlist))

(* ---------------- register file read path ---------------- *)

let test_regfile_reads () =
  let words = 8 and width = 4 in
  let info = Regfile.generate ~words ~width () in
  let nl = info.Macro.netlist in
  let rng = Rng.create 2026 in
  let mem = Array.init words (fun _ -> Rng.int rng (1 lsl width)) in
  for addr = 0 to words - 1 do
    let ins =
      List.init 3 (fun j -> (Printf.sprintf "a%d" j, bit addr j))
      @ List.concat
          (List.init words (fun w ->
               List.init width (fun b ->
                   (Printf.sprintf "d%d_%d" w b, bit mem.(w) b))))
    in
    let outs = Sim.eval_bits nl ins in
    checki
      (Printf.sprintf "read word %d" addr)
      (Regfile.spec ~words ~width ~addr (fun a -> mem.(a)))
      (read_bus outs "out" width)
  done

let test_regfile_structure () =
  let info = Regfile.generate ~words:16 ~width:8 () in
  let nl = info.Macro.netlist in
  checki "validates" 0 (List.length (N.validate nl));
  checkb "substantial macro" true (N.device_count nl > 500);
  (* Shared labels across all words and bits. *)
  checkb "regular labels" true (List.length (N.labels nl) < 12)

let test_regfile_sizes () =
  let info = Regfile.generate ~words:8 ~width:2 () in
  match Sizer.minimize_delay_typed tech info.Macro.netlist (C.spec 1e6) with
  | Error e -> Alcotest.fail (Smart_util.Err.to_string e)
  | Ok md -> (
    let target = 1.3 *. md.Sizer.golden_min in
    match Sizer.size_typed tech info.Macro.netlist (C.spec target) with
    | Error e -> Alcotest.fail (Smart_util.Err.to_string e)
    | Ok o -> checkb "meets spec" true (o.Sizer.achieved_delay <= target *. 1.03))

(* ---------------- designer pinning (§2) ---------------- *)

let test_pinning_respected () =
  let info = Smart_macros.Mux.generate Smart_macros.Mux.Strongly_mutexed ~n:4 in
  let nl = info.Macro.netlist in
  (* Pin the pass gates wide (noise immunity on a noisy region). *)
  let spec = C.spec ~pinned:[ ("N2", 12.) ] 120. in
  match Sizer.size_typed tech nl spec with
  | Error e -> Alcotest.fail (Smart_util.Err.to_string e)
  | Ok o ->
    Alcotest.(check (float 0.01)) "pinned width held" 12.
      (o.Sizer.sizing_fn "N2");
    checkb "still meets timing" true (o.Sizer.achieved_delay <= 120. *. 1.03);
    (* Unpinned labels were sized freely (not stuck at the pin). *)
    checkb "others free" true (abs_float (o.Sizer.sizing_fn "P1" -. 12.) > 0.01)

let test_pinning_changes_cost () =
  let info = Smart_macros.Mux.generate Smart_macros.Mux.Strongly_mutexed ~n:4 in
  let nl = info.Macro.netlist in
  match (Sizer.size_typed tech nl (C.spec 120.),
         Sizer.size_typed tech nl (C.spec ~pinned:[ ("N2", 12.) ] 120.)) with
  | Ok free, Ok pinned ->
    checkb "pinning costs area" true
      (pinned.Sizer.total_width >= free.Sizer.total_width)
  | _ -> Alcotest.fail "sizing failed"

let test_pinning_clamped_to_bounds () =
  let info = Smart_macros.Mux.generate Smart_macros.Mux.Strongly_mutexed ~n:4 in
  let spec = C.spec ~pinned:[ ("N2", 1e9) ] 150. in
  match Sizer.size_typed tech info.Macro.netlist spec with
  | Error _ -> () (* acceptable: absurd pin may be infeasible *)
  | Ok o ->
    checkb "clamped to w_max" true (o.Sizer.sizing_fn "N2" <= tech.Tech.w_max *. 1.01)

let () =
  Alcotest.run "smart_macros2"
    [
      ( "rotator",
        [
          Alcotest.test_case "4-bit exhaustive" `Quick (test_rotator_exhaustive 4);
          Alcotest.test_case "8-bit exhaustive" `Quick (test_rotator_exhaustive 8);
          Alcotest.test_case "structure" `Quick test_rotator_structure;
          Alcotest.test_case "pow2 validation" `Quick test_rotator_rejects_non_pow2;
        ] );
      ( "encoder",
        [
          Alcotest.test_case "8->3 exhaustive" `Quick (test_encoder_exhaustive 3);
          Alcotest.test_case "16->4 exhaustive" `Quick (test_encoder_exhaustive 4);
          Alcotest.test_case "32->5 exhaustive" `Quick (test_encoder_exhaustive 5);
          Alcotest.test_case "validates" `Quick test_encoder_validates;
        ] );
      ( "register file",
        [
          Alcotest.test_case "reads" `Quick test_regfile_reads;
          Alcotest.test_case "structure" `Quick test_regfile_structure;
          Alcotest.test_case "sizes" `Slow test_regfile_sizes;
        ] );
      ( "pinning",
        [
          Alcotest.test_case "pin respected" `Quick test_pinning_respected;
          Alcotest.test_case "pin costs area" `Quick test_pinning_changes_cost;
          Alcotest.test_case "pin clamped" `Quick test_pinning_clamped_to_bounds;
        ] );
    ]
