(* Unit tests: Smart_check (differential verification) plus the
   engine-cache, path-budget, and precharge-reachability regressions this
   subsystem was built to catch. *)

module Check = Smart_check.Check
module Oracle = Smart_check.Oracle
module Gen = Smart_check.Gen
module Fault = Smart_util.Fault
module Err = Smart_util.Err
module Paths = Smart_paths.Paths
module Sta = Smart_sta.Sta
module Cell = Smart_circuit.Cell
module B = Smart_circuit.Netlist.Builder
module Tech = Smart_tech.Tech
module Constraints = Smart_constraints.Constraints
module Sizer = Smart_sizer.Sizer
module Engine = Smart_engine.Engine

let tech = Tech.default
let checkb msg = Alcotest.(check bool) msg
let checki msg = Alcotest.(check int) msg

let chain n =
  let b = B.create "chain" in
  let i = B.input b "in" in
  let rec build k prev =
    if k = n then prev
    else begin
      let next =
        if k = n - 1 then B.output b "out"
        else B.wire b (Printf.sprintf "w%d" k)
      in
      B.inst b
        ~name:(Printf.sprintf "g%d" k)
        ~cell:
          (Cell.inverter
             ~p:(Printf.sprintf "P%d" k)
             ~n:(Printf.sprintf "N%d" k))
        ~inputs:[ ("a", prev) ] ~out:next ();
      build (k + 1) next
    end
  in
  let o = build 0 i in
  B.ext_load b o 5.;
  B.freeze b

(* ---------------- three-way oracle ---------------- *)

let test_oracle_agrees_on_samples () =
  List.iter
    (fun seed ->
      let nl = Gen.netlist ~gates:25 ~seed () in
      let v = Oracle.run tech nl ~sizing:(Gen.sizing ~seed nl) in
      checki
        (Printf.sprintf "seed %d: no mismatches" seed)
        0
        (List.length v.Oracle.mismatches))
    [ 1; 7; 42 ]

(* Seed 161 once exposed accumulate-max staleness in the event sim: an
   early slow-slope event left behind a larger arrival than the final
   input state produces.  Keep it pinned. *)
let test_oracle_seed_161_regression () =
  let nl = Gen.netlist ~gates:40 ~seed:161 () in
  let v = Oracle.run tech nl ~sizing:(Gen.sizing ~seed:161 nl) in
  checki "seed 161 agrees" 0 (List.length v.Oracle.mismatches)

let test_small_gauntlet () =
  let r = Check.gauntlet ~seeds:6 ~gates:18 tech in
  checki "all agreed" r.Check.netlists r.Check.agreed;
  checkb "no findings" true (r.Check.findings = []);
  checkb "event sim did work" true (r.Check.events > 0)

(* Every extracted rewrite candidate must survive all four soundness
   checks: term equivalence, exhaustive cross-simulation, lint, and the
   three-way timing Oracle. *)
let test_small_rewrite_gauntlet () =
  let r = Check.rewrite_gauntlet ~seeds:10 tech in
  checkb "extracted candidates" true (r.Check.rw_candidates >= 10);
  checkb "no seeds skipped" true (r.Check.rw_skipped = []);
  checkb "no equivalence failures" true (r.Check.rw_equiv_failures = []);
  checkb "no simulation failures" true (r.Check.rw_sim_failures = []);
  checkb "no lint errors" true (r.Check.rw_lint_dirty = []);
  checkb "no oracle findings" true (r.Check.rw_oracle_findings = [])

(* ---------------- GP certification ---------------- *)

let test_certify_small_sizing () =
  match Check.certify_sizing tech (chain 6) (Constraints.spec 200.) with
  | Error e -> Alcotest.failf "sizing failed: %s" (Err.to_string e)
  | Ok c ->
    checkb "ran at least one round" true (c.Check.rounds > 0);
    checki "every round certified" c.Check.rounds c.Check.certified

(* ---------------- fault injection ---------------- *)

let test_fault_drills () =
  List.iter
    (fun (d : Check.drill_result) ->
      checkb
        (Printf.sprintf "%s: %s" d.Check.fault_class d.Check.detail)
        true d.Check.passed)
    (Check.fault_drill tech)

(* Engine regression: a failed solve must not be memoized, so the same
   request retried after the fault clears re-runs the sizer and wins. *)
let test_engine_error_not_cached () =
  Fault.reset ();
  let engine = Engine.create ~workers:1 () in
  let nl = chain 5 in
  let spec = Constraints.spec 300. in
  Fault.arm "sizer.gp" (Fault.Error_result "injected GP fault");
  let first = Engine.size engine ~options:Sizer.default_options tech nl spec in
  Fault.reset ();
  (match first with
  | Error (Err.Gp_failure _) -> ()
  | Ok _ -> Alcotest.fail "injected fault did not fire"
  | Error e -> Alcotest.failf "wrong error class: %s" (Err.to_string e));
  match Engine.size engine ~options:Sizer.default_options tech nl spec with
  | Ok _ -> ()
  | Error e ->
    Alcotest.failf "retry after fault replayed a cached failure: %s"
      (Err.to_string e)

(* ---------------- path budget regression ---------------- *)

(* A 40-stage chain has exactly one path; the old budget charged every
   memoized shared prefix (~40 here) and tripped tiny budgets. *)
let test_path_budget_counts_complete_paths () =
  let paths, _ = Paths.extract ~max_paths:2 (chain 40) in
  checki "one complete path" 1 (List.length paths)

let test_path_budget_still_trips () =
  let diamond k =
    let b = B.create "diamond" in
    let i = B.input b "in" in
    let o = B.output b "out" in
    let mids =
      List.init k (fun j ->
          let w = B.wire b (Printf.sprintf "m%d" j) in
          B.inst b
            ~name:(Printf.sprintf "b%d" j)
            ~cell:
              (Cell.inverter
                 ~p:(Printf.sprintf "P%d" j)
                 ~n:(Printf.sprintf "N%d" j))
            ~inputs:[ ("a", i) ] ~out:w ();
          w)
    in
    B.inst b ~name:"merge"
      ~cell:(Cell.nand ~inputs:k ~p:"Pm" ~n:"Nm")
      ~inputs:(List.mapi (fun j w -> (Printf.sprintf "a%d" j, w)) mids)
      ~out:o ();
    B.ext_load b o 5.;
    B.freeze b
  in
  let nl = diamond 4 in
  let paths, _ = Paths.extract ~reductions:Paths.no_reductions ~max_paths:4 nl in
  checki "four complete paths fit a budget of four" 4 (List.length paths);
  checkb "five paths cannot fit a budget of four" true
    (match Paths.extract ~reductions:Paths.no_reductions ~max_paths:3 nl with
    | _ -> false
    | exception Err.Smart_error _ -> true)

(* ---------------- precharge reachability ---------------- *)

(* A static netlist is quiet in precharge: max_delay 0 would trivially
   satisfy any precharge budget, so reachable_outputs must expose that no
   launch event reached an output at all. *)
let test_precharge_reachability_distinction () =
  let static = chain 4 in
  let quiet = Sta.analyze ~mode:Sta.Precharge tech static ~sizing:(fun _ -> 2.) in
  checki "static netlist: nothing reachable in precharge" 0
    quiet.Sta.reachable_outputs;
  checkb "and the trivial max_delay is zero" true (quiet.Sta.max_delay = 0.);
  let ev = Sta.analyze tech static ~sizing:(fun _ -> 2.) in
  checkb "evaluate mode reaches the output" true (ev.Sta.reachable_outputs > 0)

let () =
  Alcotest.run "smart_check"
    [
      ( "oracle",
        [
          Alcotest.test_case "samples agree" `Quick test_oracle_agrees_on_samples;
          Alcotest.test_case "seed 161 regression" `Quick
            test_oracle_seed_161_regression;
          Alcotest.test_case "small gauntlet" `Quick test_small_gauntlet;
          Alcotest.test_case "rewrite gauntlet" `Quick
            test_small_rewrite_gauntlet;
        ] );
      ( "certify",
        [ Alcotest.test_case "small sizing" `Quick test_certify_small_sizing ] );
      ( "faults",
        [
          Alcotest.test_case "drills" `Quick test_fault_drills;
          Alcotest.test_case "errors not cached" `Quick
            test_engine_error_not_cached;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "path budget counts complete paths" `Quick
            test_path_budget_counts_complete_paths;
          Alcotest.test_case "path budget still trips" `Quick
            test_path_budget_still_trips;
          Alcotest.test_case "precharge reachability" `Quick
            test_precharge_reachability_distinction;
        ] );
    ]
