(* Unit tests: Smart_engine (parallel evaluator, solve cache, trace). *)

module Engine = Smart_engine.Engine
module Explore = Smart_explore.Explore
module Db = Smart_database.Database
module C = Smart_constraints.Constraints
module Sizer = Smart_sizer.Sizer
module Macro = Smart_macros.Macro
module Mux = Smart_macros.Mux
module Tech = Smart_tech.Tech

let tech = Tech.default
let checkb msg = Alcotest.(check bool) msg
let checki msg = Alcotest.(check int) msg

let bits_equal a b = Int64.bits_of_float a = Int64.bits_of_float b

(* The ranking fingerprint: entry names in order with bit-exact scores. *)
let fingerprint (r : Explore.ranking) =
  List.map
    (fun (c : Explore.candidate) ->
      (c.Explore.entry_name, Int64.bits_of_float c.Explore.score))
    r.Explore.ranked

let explore_with engine ~kind ~bits ~delay =
  let db = Db.builtins () in
  let req = Db.requirements ~ext_load:25. bits in
  Explore.explore_typed ~engine ~db ~kind ~requirements:req tech (C.spec delay)

(* (a) A 4-wide pool must produce exactly the sequential ranking — same
   order, same bit-identical scores, same rejections — on both the mux
   and the adder database entries. *)
let test_parallel_matches_sequential () =
  List.iter
    (fun (kind, bits, delay) ->
      let seq = Engine.create ~workers:1 ~cache_capacity:0 () in
      let par = Engine.create ~workers:4 ~cache_capacity:0 () in
      checki "pool width honoured" 4 (Engine.workers par);
      match
        (explore_with seq ~kind ~bits ~delay, explore_with par ~kind ~bits ~delay)
      with
      | Ok a, Ok b ->
        checkb (kind ^ ": identical rankings") true (fingerprint a = fingerprint b);
        checkb (kind ^ ": identical rejections") true
          (a.Explore.rejected = b.Explore.rejected)
      | Error ea, Error eb ->
        checkb (kind ^ ": identical errors") true (ea = eb)
      | _ -> Alcotest.failf "%s: sequential and parallel disagree on success" kind)
    [ ("mux", 4, 150.); ("adder", 4, 400.) ]

(* (b) A cache hit must return a bit-identical outcome to the cold solve. *)
let test_cache_hit_bit_identical () =
  let e = Engine.create ~workers:1 ~cache_capacity:16 () in
  let nl = (Mux.generate Mux.Strongly_mutexed ~n:4).Macro.netlist in
  let spec = C.spec 150. in
  let options = Sizer.default_options in
  let cold = Engine.size e ~options tech nl spec in
  let warm = Engine.size e ~options tech nl spec in
  match (cold, warm) with
  | Ok a, Ok b ->
    checkb "same sizing assignment" true (a.Sizer.sizing = b.Sizer.sizing);
    checkb "bit-identical delay" true
      (bits_equal a.Sizer.achieved_delay b.Sizer.achieved_delay);
    checkb "bit-identical width" true
      (bits_equal a.Sizer.total_width b.Sizer.total_width);
    let s = Engine.cache_stats e in
    checki "one hit" 1 s.Engine.hits;
    checki "one miss" 1 s.Engine.misses
  | _ -> Alcotest.fail "sizing failed"

(* A distinct spec (or netlist, tech, options) must not collide. *)
let test_cache_distinguishes_inputs () =
  let e = Engine.create ~workers:1 ~cache_capacity:16 () in
  let nl = (Mux.generate Mux.Strongly_mutexed ~n:4).Macro.netlist in
  let options = Sizer.default_options in
  ignore (Engine.size e ~options tech nl (C.spec 150.));
  ignore (Engine.size e ~options tech nl (C.spec 170.));
  let s = Engine.cache_stats e in
  checki "two misses" 2 s.Engine.misses;
  checki "no hits" 0 s.Engine.hits

(* (c) The LRU bound holds: capacity 2, three distinct solves evict the
   least-recently-used entry, which then misses again. *)
let test_lru_eviction_respects_bound () =
  let e = Engine.create ~workers:1 ~cache_capacity:2 () in
  let nl n = (Mux.generate Mux.Strongly_mutexed ~n).Macro.netlist in
  let options = Sizer.default_options in
  let size n = ignore (Engine.size e ~options tech (nl n) (C.spec 200.)) in
  size 2;
  (* A: miss *)
  size 3;
  (* B: miss *)
  size 2;
  (* A: hit, B becomes LRU *)
  size 4;
  (* C: miss, evicts B *)
  let s1 = Engine.cache_stats e in
  checkb "within capacity" true (s1.Engine.entries <= 2);
  checki "one eviction" 1 s1.Engine.evictions;
  size 3;
  (* B again: must miss (evicted), not hit *)
  let s2 = Engine.cache_stats e in
  checki "evicted entry misses" (s1.Engine.misses + 1) s2.Engine.misses;
  checki "hits unchanged by re-miss" s1.Engine.hits s2.Engine.hits;
  checkb "still within capacity" true (s2.Engine.entries <= 2)

(* (d) The trace sink receives exactly one sizing span per candidate. *)
let test_trace_one_span_per_candidate () =
  let sink, drain = Engine.Trace.memory () in
  let e = Engine.create ~workers:2 ~cache_capacity:0 ~sink () in
  match explore_with e ~kind:"mux" ~bits:4 ~delay:150. with
  | Error _ -> Alcotest.fail "explore failed"
  | Ok r ->
    let spans =
      List.filter
        (function Engine.Trace.Sizing _ -> true | _ -> false)
        (drain ())
    in
    checki "one sizing span per candidate"
      (List.length r.Explore.ranked + List.length r.Explore.rejected)
      (List.length spans);
    List.iter
      (function
        | Engine.Trace.Sizing s ->
          checkb "bypass cache status" true (s.cache = Engine.Trace.Bypass);
          checkb "ok spans carry iterations" true
            ((not s.ok) || s.iterations > 0)
        | _ -> ())
      spans

(* The request facade: Smart.run over a Request.t matches the deprecated
   advise wrapper, and typed errors surface where strings used to. *)
let test_request_run_facade () =
  let module Smart = Smart_core.Smart in
  let request =
    Smart.Request.make ~kind:"mux" ~bits:4 ~ext_load:25. ~delay:150. ()
  in
  (match (Smart.run request, explore_with (Engine.create ()) ~kind:"mux" ~bits:4 ~delay:150.) with
  | Ok advice, Ok r ->
    checkb "run matches explore winner" true
      (advice.Smart.ranking.Explore.winner.Explore.entry_name
      = r.Explore.winner.Explore.entry_name)
  | _ -> Alcotest.fail "run failed");
  match Smart.run (Smart.Request.make ~kind:"fifo" ~bits:4 ()) with
  | Error (Smart.Error.No_applicable_topology { kind }) ->
    checkb "typed no-applicable error" true (kind = "fifo")
  | _ -> Alcotest.fail "expected No_applicable_topology"

let () =
  Alcotest.run "smart_engine"
    [
      ( "evaluator",
        [
          Alcotest.test_case "parallel = sequential" `Quick
            test_parallel_matches_sequential;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit is bit-identical" `Quick
            test_cache_hit_bit_identical;
          Alcotest.test_case "key discrimination" `Quick
            test_cache_distinguishes_inputs;
          Alcotest.test_case "LRU bound" `Quick test_lru_eviction_respects_bound;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span per candidate" `Quick
            test_trace_one_span_per_candidate;
        ] );
      ( "facade",
        [ Alcotest.test_case "request/run" `Quick test_request_run_facade ] );
    ]
