(* Unit tests: Smart_engine (parallel evaluator, solve cache, trace). *)

module Engine = Smart_engine.Engine
module Explore = Smart_explore.Explore
module Db = Smart_database.Database
module C = Smart_constraints.Constraints
module Sizer = Smart_sizer.Sizer
module Macro = Smart_macros.Macro
module Mux = Smart_macros.Mux
module Tech = Smart_tech.Tech

let tech = Tech.default
let checkb msg = Alcotest.(check bool) msg
let checki msg = Alcotest.(check int) msg

let bits_equal a b = Int64.bits_of_float a = Int64.bits_of_float b

(* The ranking fingerprint: entry names in order with bit-exact scores. *)
let fingerprint (r : Explore.ranking) =
  List.map
    (fun (c : Explore.candidate) ->
      (c.Explore.entry_name, Int64.bits_of_float c.Explore.score))
    r.Explore.ranked

let explore_with engine ~kind ~bits ~delay =
  let db = Db.builtins () in
  let req = Db.requirements ~ext_load:25. bits in
  Explore.explore_typed ~engine ~db ~kind ~requirements:req tech (C.spec delay)

(* (a) A 4-wide pool must produce exactly the sequential ranking — same
   order, same bit-identical scores, same rejections — on both the mux
   and the adder database entries. *)
let test_parallel_matches_sequential () =
  List.iter
    (fun (kind, bits, delay) ->
      let seq = Engine.create ~workers:1 ~cache_capacity:0 () in
      let par = Engine.create ~workers:4 ~cache_capacity:0 () in
      checki "pool width honoured" 4 (Engine.workers par);
      match
        (explore_with seq ~kind ~bits ~delay, explore_with par ~kind ~bits ~delay)
      with
      | Ok a, Ok b ->
        checkb (kind ^ ": identical rankings") true (fingerprint a = fingerprint b);
        checkb (kind ^ ": identical rejections") true
          (a.Explore.rejected = b.Explore.rejected)
      | Error ea, Error eb ->
        checkb (kind ^ ": identical errors") true (ea = eb)
      | _ -> Alcotest.failf "%s: sequential and parallel disagree on success" kind)
    [ ("mux", 4, 150.); ("adder", 4, 400.) ]

(* (b) A cache hit must return a bit-identical outcome to the cold solve. *)
let test_cache_hit_bit_identical () =
  let e = Engine.create ~workers:1 ~cache_capacity:16 () in
  let nl = (Mux.generate Mux.Strongly_mutexed ~n:4).Macro.netlist in
  let spec = C.spec 150. in
  let options = Sizer.default_options in
  let cold = Engine.size e ~options tech nl spec in
  let warm = Engine.size e ~options tech nl spec in
  match (cold, warm) with
  | Ok a, Ok b ->
    checkb "same sizing assignment" true (a.Sizer.sizing = b.Sizer.sizing);
    checkb "bit-identical delay" true
      (bits_equal a.Sizer.achieved_delay b.Sizer.achieved_delay);
    checkb "bit-identical width" true
      (bits_equal a.Sizer.total_width b.Sizer.total_width);
    let s = Engine.cache_stats e in
    checki "one hit" 1 s.Engine.hits;
    checki "one miss" 1 s.Engine.misses
  | _ -> Alcotest.fail "sizing failed"

(* A distinct spec (or netlist, tech, options) must not collide. *)
let test_cache_distinguishes_inputs () =
  let e = Engine.create ~workers:1 ~cache_capacity:16 () in
  let nl = (Mux.generate Mux.Strongly_mutexed ~n:4).Macro.netlist in
  let options = Sizer.default_options in
  ignore (Engine.size e ~options tech nl (C.spec 150.));
  ignore (Engine.size e ~options tech nl (C.spec 170.));
  let s = Engine.cache_stats e in
  checki "two misses" 2 s.Engine.misses;
  checki "no hits" 0 s.Engine.hits

(* (c) The LRU bound holds: capacity 2, three distinct solves evict the
   least-recently-used entry, which then misses again. *)
let test_lru_eviction_respects_bound () =
  let e = Engine.create ~workers:1 ~cache_capacity:2 () in
  let nl n = (Mux.generate Mux.Strongly_mutexed ~n).Macro.netlist in
  let options = Sizer.default_options in
  let size n = ignore (Engine.size e ~options tech (nl n) (C.spec 200.)) in
  size 2;
  (* A: miss *)
  size 3;
  (* B: miss *)
  size 2;
  (* A: hit, B becomes LRU *)
  size 4;
  (* C: miss, evicts B *)
  let s1 = Engine.cache_stats e in
  checkb "within capacity" true (s1.Engine.entries <= 2);
  checki "one eviction" 1 s1.Engine.evictions;
  size 3;
  (* B again: must miss (evicted), not hit *)
  let s2 = Engine.cache_stats e in
  checki "evicted entry misses" (s1.Engine.misses + 1) s2.Engine.misses;
  checki "hits unchanged by re-miss" s1.Engine.hits s2.Engine.hits;
  checkb "still within capacity" true (s2.Engine.entries <= 2)

(* (d) The trace sink receives exactly one sizing span per candidate. *)
let test_trace_one_span_per_candidate () =
  let sink, drain = Engine.Trace.memory () in
  let e = Engine.create ~workers:2 ~cache_capacity:0 ~sink () in
  match explore_with e ~kind:"mux" ~bits:4 ~delay:150. with
  | Error _ -> Alcotest.fail "explore failed"
  | Ok r ->
    let spans =
      List.filter
        (function Engine.Trace.Sizing _ -> true | _ -> false)
        (drain ())
    in
    checki "one sizing span per candidate"
      (List.length r.Explore.ranked + List.length r.Explore.rejected)
      (List.length spans);
    List.iter
      (function
        | Engine.Trace.Sizing s ->
          checkb "bypass cache status" true (s.cache = Engine.Trace.Bypass);
          checkb "ok spans carry iterations" true
            ((not s.ok) || s.iterations > 0)
        | _ -> ())
      spans

(* Hier-engaged candidates keep per-candidate span attribution: every
   sub-solve span a hierarchically sized candidate emits is labelled
   "hier:<candidate>/<unit>", so a batch's spans partition by candidate
   even though each candidate fans out many engine solves. *)
let test_trace_hier_spans_per_candidate () =
  let sink, drain = Engine.Trace.memory () in
  let e = Engine.create ~workers:2 ~cache_capacity:0 ~sink () in
  let variants =
    [
      ("m4", Mux.generate Mux.Strongly_mutexed ~n:4);
      ("m8", Mux.generate Mux.Strongly_mutexed ~n:8);
    ]
  in
  let hier_options =
    { Smart_hier.Hier.default_options with auto_threshold = 1 }
  in
  match
    Explore.tune_typed ~engine:e ~hier:`Auto ~hier_options ~variants tech
      (C.spec 250.)
  with
  | Error e -> Alcotest.fail (Smart_util.Err.to_string e)
  | Ok r ->
    checkb "both candidates engaged hier" true
      (List.for_all
         (fun (_, (i : Macro.info)) ->
           Smart_hier.Hier.engages ~options:hier_options `Auto i.Macro.netlist)
         variants);
    checki "both candidates ranked or rejected" 2
      (List.length r.Explore.ranked + List.length r.Explore.rejected);
    let labels =
      List.filter_map
        (function
          | Engine.Trace.Sizing { label; _ } -> Some label | _ -> None)
        (drain ())
    in
    let prefixed p l =
      String.length l >= String.length p && String.sub l 0 (String.length p) = p
    in
    List.iter
      (fun (n, _) ->
        checkb (n ^ " has attributed hier spans") true
          (List.exists (prefixed ("hier:" ^ n ^ "/")) labels))
      variants;
    checkb "every sizing span attributed to a candidate" true
      (List.for_all
         (fun l ->
           List.exists (fun (n, _) -> prefixed ("hier:" ^ n ^ "/") l) variants)
         labels)

(* (e) Trace sinks under many domains.  [memory] used to lose events to
   the non-atomic [events := e :: !events] read-modify-write; the stress
   below reliably exposed that: several domains hammering one sink must
   drain exactly every event. *)
let test_memory_sink_no_lost_events () =
  let domains = 4 and per_domain = 5_000 in
  let sink, drain = Engine.Trace.memory () in
  let emit d =
    for i = 1 to per_domain do
      sink
        (Engine.Trace.Min_delay
           {
             label = Printf.sprintf "d%d:%d" d i;
             wall_s = 0.;
             cache = Engine.Trace.Bypass;
           })
    done
  in
  let spawned = List.init domains (fun d -> Domain.spawn (fun () -> emit d)) in
  List.iter Domain.join spawned;
  let events = drain () in
  checki "no lost events" (domains * per_domain) (List.length events);
  (* Every domain's full sequence made it, in per-domain emission order
     (the drain is globally ordered, per-domain subsequences preserved). *)
  List.iter
    (fun d ->
      let mine =
        List.filter_map
          (function
            | Engine.Trace.Min_delay { label; _ } ->
              (match String.split_on_char ':' label with
              | [ tag; i ] when tag = Printf.sprintf "d%d" d ->
                Some (int_of_string i)
              | _ -> None)
            | _ -> None)
          events
      in
      checki (Printf.sprintf "domain %d complete" d) per_domain
        (List.length mine);
      checkb
        (Printf.sprintf "domain %d order preserved" d)
        true
        (mine = List.init per_domain (fun i -> i + 1)))
    (List.init domains (fun d -> d))

(* [json_lines] used to interleave bytes from concurrent domains into
   corrupt lines and only flush on close.  Now: every line is a complete
   JSON object, the count is exact, and each line is flushed as written. *)
let test_json_lines_concurrent_integrity () =
  let path = Filename.temp_file "smart_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      let sink = Engine.Trace.json_lines oc in
      (* Per-line flush: one event must be on disk before any close. *)
      sink
        (Engine.Trace.Min_delay
           { label = "flush-probe"; wall_s = 0.; cache = Engine.Trace.Hit });
      checkb "flushed before close" true ((Unix.stat path).Unix.st_size > 0);
      let domains = 4 and per_domain = 2_000 in
      let emit d =
        for i = 1 to per_domain do
          sink
            (Engine.Trace.Sizing
               {
                 label = Printf.sprintf "d%d:%d" d i;
                 wall_s = 0.;
                 iterations = i;
                 gp_newton = 0;
                 sta_verifies = 0;
                 cache = Engine.Trace.Bypass;
                 ok = true;
               })
        done
      in
      let spawned =
        List.init domains (fun d -> Domain.spawn (fun () -> emit d))
      in
      List.iter Domain.join spawned;
      close_out oc;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      checki "one line per event" (1 + (domains * per_domain))
        (List.length lines);
      (* Interleaved writes would leave lines that don't scan as one JSON
         object: wrong delimiters, or an odd number of quotes. *)
      List.iter
        (fun line ->
          let n = String.length line in
          let quotes = ref 0 in
          String.iter (fun c -> if c = '"' then incr quotes) line;
          checkb "line is one complete JSON object" true
            (n > 2
            && line.[0] = '{'
            && line.[n - 1] = '}'
            && !quotes mod 2 = 0))
        lines)

(* (f) The cache key must incorporate the solver/model version stamp:
   flipping the stamp invalidates every entry (a hit would hand back a
   blob produced by a different solver), and restoring it revalidates
   them. *)
let test_cache_version_stamp_invalidates () =
  let original = Engine.cache_version () in
  Fun.protect
    ~finally:(fun () -> Engine.set_cache_version original)
    (fun () ->
      let e = Engine.create ~workers:1 ~cache_capacity:16 () in
      let nl = (Mux.generate Mux.Strongly_mutexed ~n:4).Macro.netlist in
      let spec = C.spec 150. in
      let options = Sizer.default_options in
      let size () = ignore (Engine.size e ~options tech nl spec) in
      size ();
      size ();
      let s1 = Engine.cache_stats e in
      checki "warm-up: one miss" 1 s1.Engine.misses;
      checki "warm-up: one hit" 1 s1.Engine.hits;
      Engine.set_cache_version (original ^ "+model-bump");
      size ();
      let s2 = Engine.cache_stats e in
      checki "stamp flip forces a miss" (s1.Engine.misses + 1) s2.Engine.misses;
      checki "stamp flip adds no hit" s1.Engine.hits s2.Engine.hits;
      Engine.set_cache_version original;
      size ();
      let s3 = Engine.cache_stats e in
      checki "restored stamp hits again" (s2.Engine.hits + 1) s3.Engine.hits;
      checki "restored stamp adds no miss" s2.Engine.misses s3.Engine.misses)

(* (g) Persistent-store promotion and the prefetch probe.  A store hit
   reached through [size] reclassifies the already-counted miss as a
   store hit; [prefetch] warms memory through the [~counted_miss:false]
   path and must leave every counter untouched — in particular misses
   can never go negative however the two paths interleave. *)
let test_store_promotion_and_prefetch_probe () =
  let store_tbl : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let store =
    {
      Engine.Store.find = (fun k -> Hashtbl.find_opt store_tbl k);
      save = (fun k v -> Hashtbl.replace store_tbl k v);
    }
  in
  let nl = (Mux.generate Mux.Strongly_mutexed ~n:4).Macro.netlist in
  let spec = C.spec 150. in
  let options = Sizer.default_options in
  (* Populate the store with one cold solve on a throwaway engine. *)
  let producer = Engine.create ~workers:1 ~cache_capacity:16 () in
  Engine.set_store producer (Some store);
  let reference =
    match Engine.size producer ~options tech nl spec with
    | Ok o -> o
    | Error _ -> Alcotest.fail "producer solve failed"
  in
  checkb "solve persisted to the store" true (Hashtbl.length store_tbl > 0);
  (* Path 1: prefetch, then size.  The probe records nothing; the
     request then hits memory, never the store. *)
  let e1 = Engine.create ~workers:1 ~cache_capacity:16 () in
  Engine.set_store e1 (Some store);
  checkb "prefetch promotes the blob" true
    (Engine.prefetch e1 ~options tech nl spec);
  let s = Engine.cache_stats e1 in
  checki "probe: no hit" 0 s.Engine.hits;
  checki "probe: no miss" 0 s.Engine.misses;
  checki "probe: no store hit" 0 s.Engine.store_hits;
  checki "probe: entry resident" 1 s.Engine.entries;
  (match Engine.size e1 ~options tech nl spec with
  | Ok o ->
    checkb "prefetched result bit-identical" true
      (bits_equal o.Sizer.achieved_delay reference.Sizer.achieved_delay)
  | Error _ -> Alcotest.fail "warm solve failed");
  let s = Engine.cache_stats e1 in
  checki "warm request is a memory hit" 1 s.Engine.hits;
  checki "misses cannot go negative" 0 s.Engine.misses;
  (* Path 2: size straight through the store.  The memory miss is
     reclassified as a store hit, so the ledger still balances: every
     request is exactly one of hit / store_hit / miss. *)
  let e2 = Engine.create ~workers:1 ~cache_capacity:16 () in
  Engine.set_store e2 (Some store);
  ignore (Engine.size e2 ~options tech nl spec);
  ignore (Engine.size e2 ~options tech nl spec);
  let s = Engine.cache_stats e2 in
  checki "store hit reclassified" 1 s.Engine.store_hits;
  checki "reclassified miss removed" 0 s.Engine.misses;
  checki "repeat hits memory" 1 s.Engine.hits;
  checki "ledger balances: one outcome per request" 2
    (s.Engine.hits + s.Engine.store_hits + s.Engine.misses)

(* (h) Eviction is deterministic: after a fixed request sequence the
   surviving entries are a function of the sequence alone, not of
   Hashtbl iteration order.  [prefetch] with no store attached is a
   stats-neutral residency probe, so the survivor set is observable
   without perturbing what it observes. *)
let test_eviction_deterministic_survivors () =
  let nl n = (Mux.generate Mux.Strongly_mutexed ~n).Macro.netlist in
  let options = Sizer.default_options in
  let spec = C.spec 200. in
  let drive () =
    let e = Engine.create ~workers:1 ~cache_capacity:2 () in
    List.iter
      (fun n -> ignore (Engine.size e ~options tech (nl n) spec))
      [ 2; 3; 2; 4; 5 ];
    e
  in
  (* 2 miss, 3 miss, 2 hit (refreshes 2), 4 miss evicts 3, 5 miss
     evicts 2: survivors {4, 5}. *)
  let check_engine tag e =
    let s = Engine.cache_stats e in
    checki (tag ^ ": hits") 1 s.Engine.hits;
    checki (tag ^ ": misses") 4 s.Engine.misses;
    checki (tag ^ ": evictions") 2 s.Engine.evictions;
    checki (tag ^ ": entries") 2 s.Engine.entries;
    checki (tag ^ ": ledger balances") 5
      (s.Engine.hits + s.Engine.store_hits + s.Engine.misses);
    let resident n = Engine.prefetch e ~options tech (nl n) spec in
    checkb (tag ^ ": 2 evicted") false (resident 2);
    checkb (tag ^ ": 3 evicted") false (resident 3);
    checkb (tag ^ ": 4 survives") true (resident 4);
    checkb (tag ^ ": 5 survives") true (resident 5);
    (* The probes themselves must not have moved any counter. *)
    checkb (tag ^ ": probes are stats-neutral") true
      (Engine.cache_stats e = s)
  in
  let a = drive () and b = drive () in
  check_engine "first run" a;
  check_engine "second run" b;
  checkb "identical sequences, identical stats" true
    (Engine.cache_stats a = Engine.cache_stats b)

(* The request facade: Smart.run over a Request.t matches the deprecated
   advise wrapper, and typed errors surface where strings used to. *)
let test_request_run_facade () =
  let module Smart = Smart_core.Smart in
  let request =
    Smart.Request.make ~kind:"mux" ~bits:4 ~ext_load:25. ~delay:150. ()
  in
  (match (Smart.run request, explore_with (Engine.create ()) ~kind:"mux" ~bits:4 ~delay:150.) with
  | Ok advice, Ok r ->
    checkb "run matches explore winner" true
      (advice.Smart.ranking.Explore.winner.Explore.entry_name
      = r.Explore.winner.Explore.entry_name)
  | _ -> Alcotest.fail "run failed");
  match Smart.run (Smart.Request.make ~kind:"fifo" ~bits:4 ()) with
  | Error (Smart.Error.No_applicable_topology { kind }) ->
    checkb "typed no-applicable error" true (kind = "fifo")
  | _ -> Alcotest.fail "expected No_applicable_topology"

let () =
  Alcotest.run "smart_engine"
    [
      ( "evaluator",
        [
          Alcotest.test_case "parallel = sequential" `Quick
            test_parallel_matches_sequential;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit is bit-identical" `Quick
            test_cache_hit_bit_identical;
          Alcotest.test_case "key discrimination" `Quick
            test_cache_distinguishes_inputs;
          Alcotest.test_case "LRU bound" `Quick test_lru_eviction_respects_bound;
          Alcotest.test_case "store promotion + prefetch probe" `Quick
            test_store_promotion_and_prefetch_probe;
          Alcotest.test_case "deterministic eviction survivors" `Quick
            test_eviction_deterministic_survivors;
          Alcotest.test_case "version stamp invalidates" `Quick
            test_cache_version_stamp_invalidates;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span per candidate" `Quick
            test_trace_one_span_per_candidate;
          Alcotest.test_case "hier spans per candidate" `Quick
            test_trace_hier_spans_per_candidate;
          Alcotest.test_case "memory sink loses nothing" `Quick
            test_memory_sink_no_lost_events;
          Alcotest.test_case "json_lines stays well-formed" `Quick
            test_json_lines_concurrent_integrity;
        ] );
      ( "facade",
        [ Alcotest.test_case "request/run" `Quick test_request_run_facade ] );
    ]
