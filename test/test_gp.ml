(* Unit + property tests: Smart_gp (geometric program solver). *)

module P = Smart_gp.Problem
module S = Smart_gp.Solver
module Posy = Smart_posy.Posy
module M = Smart_posy.Monomial
module Rng = Smart_util.Rng

let checkb msg = Alcotest.(check bool) msg
let checkf tol msg = Alcotest.(check (float tol)) msg

let solve_ok p =
  match S.solve p with
  | Ok sol -> sol
  | Error e -> Alcotest.fail ("solver error: " ^ e)

let test_symmetric_optimum () =
  (* min x + y s.t. 1/(xy) <= 1: optimum x = y = 1, objective 2. *)
  let p =
    P.make
      ~inequalities:[ ("c", Posy.of_monomial (M.make 1. [ ("x", -1.); ("y", -1.) ])) ]
      (Posy.add (Posy.var "x") (Posy.var "y"))
  in
  let sol = solve_ok p in
  checkb "optimal" true (sol.S.status = S.Optimal);
  checkf 1e-3 "objective" 2. sol.S.objective_value;
  checkf 1e-3 "x" 1. (S.lookup sol "x");
  checkf 1e-3 "y" 1. (S.lookup sol "y")

let test_box_volume () =
  (* max volume under surface budget: min 1/(xyz) s.t.
     0.2(xy + yz + xz) <= 1; optimum x = y = z = sqrt(10/6). *)
  let surf =
    Posy.of_monomials
      [
        M.make 0.2 [ ("x", 1.); ("y", 1.) ];
        M.make 0.2 [ ("y", 1.); ("z", 1.) ];
        M.make 0.2 [ ("x", 1.); ("z", 1.) ];
      ]
  in
  let p =
    P.make ~inequalities:[ ("surf", surf) ]
      (Posy.of_monomial (M.make 1. [ ("x", -1.); ("y", -1.); ("z", -1.) ]))
  in
  let sol = solve_ok p in
  let expected = sqrt (10. /. 6.) in
  checkf 1e-3 "x" expected (S.lookup sol "x");
  checkf 1e-3 "y" expected (S.lookup sol "y");
  checkf 1e-3 "z" expected (S.lookup sol "z")

let test_active_bound () =
  (* min x s.t. x >= 3 via bounds. *)
  let p = P.make ~bounds:[ ("x", 3., 10.) ] (Posy.var "x") in
  let sol = solve_ok p in
  checkf 1e-3 "sits on bound" 3. (S.lookup sol "x")

let test_infeasible_detected () =
  let p =
    P.make
      ~inequalities:
        [
          ("le", Posy.of_monomial (M.make 2. [ ("x", 1.) ]));
          (* x <= 0.5 *)
          ("ge", Posy.of_monomial (M.make 2. [ ("x", -1.) ]));
          (* x >= 2 *)
        ]
      (Posy.var "x")
  in
  let sol = solve_ok p in
  checkb "infeasible" true (sol.S.status = S.Infeasible)

let test_equality_elimination () =
  (* min x*y s.t. x*y^2 = 4 (so x = 4/y^2), x,y in [0.1, 10]:
     objective 4/y is minimised at y = sqrt(4/0.1) where x hits 0.1. *)
  let p =
    P.make
      ~equalities:[ ("eq", M.make 0.25 [ ("x", 1.); ("y", 2.) ]) ]
      ~bounds:[ ("x", 0.1, 10.); ("y", 0.1, 10.) ]
      (Posy.of_monomial (M.make 1. [ ("x", 1.); ("y", 1.) ]))
  in
  let sol = solve_ok p in
  checkf 1e-2 "x at lower bound" 0.1 (S.lookup sol "x");
  checkf 1e-2 "objective" (4. /. sqrt 40.) sol.S.objective_value;
  (* The equality must hold at the reported solution. *)
  let x = S.lookup sol "x" and y = S.lookup sol "y" in
  checkf 1e-4 "equality satisfied" 1. (0.25 *. x *. y *. y)

let test_kkt_residual_small () =
  let p =
    P.make
      ~inequalities:[ ("c", Posy.of_monomial (M.make 1. [ ("x", -1.); ("y", -1.) ])) ]
      (Posy.add (Posy.var "x") (Posy.scale 3. (Posy.var "y")))
  in
  let sol = solve_ok p in
  checkb "KKT stationarity" true (S.kkt_residual p sol < 1e-4)

let test_duals_positive () =
  let p =
    P.make
      ~inequalities:[ ("c", Posy.of_monomial (M.make 1. [ ("x", -1.) ])) ]
      (Posy.var "x")
  in
  let sol = solve_ok p in
  checkb "dual of active constraint is positive" true
    (List.assoc "c" sol.S.duals > 1e-3)

let test_problem_validation () =
  Alcotest.check_raises "bad bounds"
    (Smart_util.Err.Smart_error "Gp.Problem: bad bounds for x: [2, 1]")
    (fun () -> ignore (P.make ~bounds:[ ("x", 2., 1.) ] (Posy.var "x")))

let test_constraint_le_helper () =
  let c = P.constraint_le "c" (Posy.var "x") (Posy.of_monomial (M.const 5.)) in
  checkb "monomial rhs accepted" true (c <> None);
  let c2 = P.constraint_le "c" (Posy.var "x") (Posy.add (Posy.var "y") (Posy.const 1.)) in
  checkb "posynomial rhs rejected" true (c2 = None)

(* Regression: patching compiled coefficients with [rescale_compiled]
   must land on the same optimum as recompiling an explicitly rescaled
   Problem — and the identity factor must restore the original. *)
let test_rescale_compiled_matches_recompile () =
  let vars = [ "a"; "b"; "c" ] in
  let objective = Posy.sum (List.map Posy.var vars) in
  let ineqs =
    List.mapi
      (fun i v ->
        ( Printf.sprintf "c%d" i,
          Posy.of_monomial (M.make (0.4 +. (0.2 *. float_of_int i)) [ (v, -1.) ])
        ))
      vars
  in
  let bounds = List.map (fun v -> (v, 0.01, 100.)) vars in
  let base = P.make ~inequalities:ineqs ~bounds objective in
  let factor = function "c0" -> 1.3 | "c1" -> 0.8 | _ -> 1.0 in
  let prepared = S.prepare base in
  let sol0 = match S.resolve prepared with Ok s -> s | Error e -> Alcotest.fail e in
  S.rescale_compiled prepared factor;
  let patched =
    match S.resolve ?warm:(S.warm_handle sol0) prepared with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let recompiled =
    solve_ok
      (P.make
         ~inequalities:
           (List.map (fun (nm, c) -> (nm, Posy.scale (factor nm) c)) ineqs)
         ~bounds objective)
  in
  checkb "both optimal" true
    (patched.S.status = S.Optimal && recompiled.S.status = S.Optimal);
  checkf 1e-5 "objective" recompiled.S.objective_value patched.S.objective_value;
  List.iter
    (fun v -> checkf 1e-4 v (S.lookup recompiled v) (S.lookup patched v))
    vars;
  (* Identity factors restore the problem as prepared. *)
  S.rescale_compiled prepared (fun _ -> 1.);
  let restored =
    match S.resolve prepared with Ok s -> s | Error e -> Alcotest.fail e
  in
  checkf 1e-5 "identity restores" sol0.S.objective_value
    restored.S.objective_value

(* Property: a warm-started resolve after a random budget rescale agrees
   with a cold compile-and-solve of the equivalent rescaled Problem —
   the hot path may never trade accuracy for speed.  Factors straddle 1
   so both relaxing rounds (warm point stays feasible, phase I skipped)
   and tightening rounds (falls back to a warm-seeded phase I) are
   exercised. *)
let prop_warm_resolve_matches_cold =
  QCheck.Test.make ~name:"warm resolve matches cold solve across rescales"
    ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let vars = [ "a"; "b"; "c" ] in
      let objective =
        Posy.of_monomials
          (List.map (fun v -> M.make (Rng.uniform rng 0.5 2.) [ (v, 1.) ]) vars)
      in
      let ineqs =
        List.mapi
          (fun i v ->
            ( Printf.sprintf "c%d" i,
              Posy.of_monomial
                (M.make (Rng.uniform rng 0.2 1.) [ (v, -1.) ]) ))
          vars
      in
      let bounds = List.map (fun v -> (v, 0.01, 100.)) vars in
      let base = P.make ~inequalities:ineqs ~bounds objective in
      let prepared = S.prepare base in
      match S.resolve prepared with
      | Error _ -> false
      | Ok sol0 ->
        let warm = ref (S.warm_handle sol0) in
        let round _ =
          (* Absolute factors w.r.t. the problem as prepared. *)
          let factors =
            List.map (fun (nm, _) -> (nm, Rng.uniform rng 0.7 1.3)) ineqs
          in
          let factor nm =
            match List.assoc_opt nm factors with Some f -> f | None -> 1.
          in
          S.rescale_compiled prepared factor;
          let cold =
            S.solve
              (P.make
                 ~inequalities:
                   (List.map
                      (fun (nm, c) -> (nm, Posy.scale (factor nm) c))
                      ineqs)
                 ~bounds objective)
          in
          match (cold, S.resolve ?warm:!warm prepared) with
          | Ok sc, Ok sw ->
            (match S.warm_handle sw with
            | Some _ as w -> warm := w
            | None -> ());
            sc.S.status = S.Optimal
            && sw.S.status = S.Optimal
            && abs_float (sc.S.objective_value -. sw.S.objective_value)
               <= 1e-5 *. abs_float sc.S.objective_value
          | _ -> false
        in
        List.for_all round [ 1; 2; 3 ])

(* Property: on random feasible problems, the solver's objective is no
   worse than any feasible point we can sample. *)
let prop_no_sampled_point_beats_solver =
  QCheck.Test.make ~name:"solver optimum beats random feasible samples"
    ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let vars = [ "a"; "b"; "c" ] in
      (* Objective: positive combination of the variables. *)
      let objective =
        Posy.of_monomials
          (List.map (fun v -> M.make (Rng.uniform rng 0.5 2.) [ (v, 1.) ]) vars)
      in
      (* One "coverage" constraint keeping variables away from zero. *)
      let cons =
        Posy.of_monomials
          (List.map
             (fun v -> M.make (Rng.uniform rng 0.2 1.) [ (v, -1.) ])
             vars)
      in
      let p =
        P.make
          ~inequalities:[ ("cover", cons) ]
          ~bounds:(List.map (fun v -> (v, 0.01, 100.)) vars)
          objective
      in
      match S.solve p with
      | Error _ -> false
      | Ok sol -> (
        match sol.S.status with
        | S.Infeasible -> false
        | _ ->
          let feasible env = Posy.eval env cons <= 1. +. 1e-9 in
          let beaten = ref false in
          for _ = 1 to 200 do
            let vals = List.map (fun v -> (v, Rng.uniform rng 0.01 20.)) vars in
            let env v = List.assoc v vals in
            if feasible env && Posy.eval env objective < sol.S.objective_value *. 0.999
            then beaten := true
          done;
          not !beaten))

let prop_solution_feasible =
  QCheck.Test.make ~name:"reported solutions satisfy all constraints"
    ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let nv = 2 + Rng.int rng 3 in
      let vars = List.init nv (fun i -> Printf.sprintf "v%d" i) in
      let mono () =
        M.make (Rng.uniform rng 0.1 2.)
          (List.filter_map
             (fun v ->
               if Rng.bool rng then Some (v, Rng.uniform rng (-1.5) 1.5) else None)
             vars)
      in
      let ineqs =
        List.init (1 + Rng.int rng 3) (fun i ->
            (Printf.sprintf "c%d" i, Posy.of_monomials [ mono (); mono () ]))
      in
      let p =
        P.make ~inequalities:ineqs
          ~bounds:(List.map (fun v -> (v, 0.05, 50.)) vars)
          (Posy.sum (List.map Posy.var vars))
      in
      match S.solve p with
      | Error _ -> false
      | Ok sol -> (
        match sol.S.status with
        | S.Infeasible -> true (* nothing to verify *)
        | _ ->
          let env v = S.lookup sol v in
          List.for_all (fun (_, c) -> Posy.eval env c <= 1. +. 1e-5) ineqs
          && List.for_all
               (fun v ->
                 let x = env v in
                 x >= 0.05 -. 1e-6 && x <= 50. +. 1e-4)
               vars))

let prop_objective_scaling_invariance =
  QCheck.Test.make ~name:"scaling the objective does not move the argmin"
    ~count:30
    QCheck.(pair (int_range 0 100_000) (float_range 0.5 8.))
    (fun (seed, k) ->
      let rng = Rng.create seed in
      let obj =
        Posy.of_monomials
          [ M.make (Rng.uniform rng 0.5 2.) [ ("a", 1.) ];
            M.make (Rng.uniform rng 0.5 2.) [ ("b", 1.) ] ]
      in
      let cons =
        Posy.of_monomial (M.make (Rng.uniform rng 0.5 2.) [ ("a", -1.); ("b", -1.) ])
      in
      let solve obj =
        P.make ~inequalities:[ ("c", cons) ] obj |> S.solve
      in
      match (solve obj, solve (Posy.scale k obj)) with
      | Ok s1, Ok s2 ->
        abs_float (S.lookup s1 "a" -. S.lookup s2 "a") < 1e-3
        && abs_float (S.lookup s1 "b" -. S.lookup s2 "b") < 1e-3
      | _ -> false)

let prop_redundant_constraint_harmless =
  QCheck.Test.make ~name:"a dominated constraint does not move the optimum"
    ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let c = Rng.uniform rng 0.5 2. in
      let cons = Posy.of_monomial (M.make c [ ("a", -1.); ("b", -1.) ]) in
      (* Strictly weaker copy (smaller coefficient): implied by [cons]. *)
      let weaker = Posy.of_monomial (M.make (c /. 2.) [ ("a", -1.); ("b", -1.) ]) in
      let obj = Posy.add (Posy.var "a") (Posy.var "b") in
      match
        ( S.solve (P.make ~inequalities:[ ("c", cons) ] obj),
          S.solve (P.make ~inequalities:[ ("c", cons); ("weak", weaker) ] obj) )
      with
      | Ok s1, Ok s2 ->
        abs_float (s1.S.objective_value -. s2.S.objective_value)
        /. s1.S.objective_value
        < 1e-3
      | _ -> false)

(* A synthetic multi-scenario merge with genuinely private variables:
   shared widths w0..w_m, and per scenario a chain of stage variables
   s<i>_<j> coupling consecutive widths.  Each stage constraint
   k/(w_j s) + k s/w_{j+1} <= 1 is strictly convex in log s, so the
   optimum determines every private variable uniquely — the dense and
   block paths must agree on all of them, not just the objective. *)
let arrowhead_merge ~scenarios ~stages =
  let w j = Printf.sprintf "w%d" j in
  let scenario i =
    let k = 0.3 +. (0.05 *. float_of_int i) in
    let ineqs =
      List.init stages (fun j ->
          let s = Printf.sprintf "s%d_%d" i j in
          ( Printf.sprintf "st%d" j,
            Posy.of_monomials
              [
                M.make k [ (w j, -1.); (s, -1.) ];
                M.make k [ (s, 1.); (w (j + 1), -1.) ];
              ] ))
    in
    P.make ~inequalities:ineqs (Posy.var (w 0))
  in
  let shared = List.init (stages + 1) w in
  let objective = Posy.sum (List.map Posy.var shared) in
  let tagged =
    List.init scenarios (fun i -> (Printf.sprintf "c%d" i, scenario i))
  in
  P.merge ~objective tagged

let test_merge_structure_partition () =
  let merged = arrowhead_merge ~scenarios:3 ~stages:2 in
  (match P.structure merged with
  | None -> Alcotest.fail "merged problem reports no structure"
  | Some st ->
    Alcotest.(check (array string)) "tags" [| "c0"; "c1"; "c2" |] st.P.tags;
    Alcotest.(check (list string)) "shared are the widths" [ "w0"; "w1"; "w2" ]
      (List.sort compare st.P.shared);
    List.iter
      (fun (tag, privs) ->
        Alcotest.(check int) (tag ^ " private count") 2 (List.length privs);
        checkb (tag ^ " privates carry the tag index") true
          (List.for_all
             (fun v ->
               String.length v >= 2 && v.[1] = tag.[String.length tag - 1])
             privs))
      st.P.private_vars);
  (* An unmerged problem has no partition... *)
  checkb "plain problem has no structure" true
    (P.structure (P.make (Posy.var "x")) = None);
  (* ...and a merge over only shared variables has tags but no blocks. *)
  let shared_only =
    P.merge ~objective:(Posy.var "x")
      [
        ("a", P.make ~inequalities:[ ("c", Posy.of_monomial (M.make 0.5 [ ("x", -1.) ])) ]
                (Posy.var "x"));
        ("b", P.make ~inequalities:[ ("c", Posy.of_monomial (M.make 0.7 [ ("x", -1.) ])) ]
                (Posy.var "x"));
      ]
  in
  match P.structure shared_only with
  | None -> Alcotest.fail "shared-only merge reports no structure"
  | Some st ->
    checkb "no private variables" true
      (List.for_all (fun (_, privs) -> privs = []) st.P.private_vars)

let test_block_path_matches_dense () =
  let merged = arrowhead_merge ~scenarios:3 ~stages:5 in
  let structured = S.prepare ~structure:true merged in
  let dense = S.prepare ~structure:false merged in
  Alcotest.(check int) "arrow-head blocks detected" 3
    (S.structure_stats structured).S.blocks;
  Alcotest.(check int) "dense reference has none" 0
    (S.structure_stats dense).S.blocks;
  match (S.resolve structured, S.resolve dense) with
  | Ok sb, Ok sd ->
    checkb "both optimal" true (sb.S.status = S.Optimal && sd.S.status = S.Optimal);
    checkf 1e-6 "objective agrees" sd.S.objective_value sb.S.objective_value;
    List.iter
      (fun (v, xd) ->
        let xb = S.lookup sb v in
        checkb (v ^ " agrees") true
          (abs_float (xb -. xd) <= 1e-5 *. Float.max 1. (abs_float xd)))
      sd.S.values
  | _ -> Alcotest.fail "resolve failed"

(* The warm hot path's allocation contract: all Newton-loop vectors and
   matrices live in the prepared workspace, so a warm re-solve's minor
   allocation is the fixed per-solve overhead (solution lists), not
   O(newton iterations).  A leak of even one Hessian-sized buffer per
   iteration (~3.4k words here) trips the per-iteration bound. *)
let test_warm_resolve_newton_allocation_free () =
  let merged = arrowhead_merge ~scenarios:3 ~stages:5 in
  let prepared = S.prepare ~structure:true merged in
  let sol0 =
    match S.resolve prepared with Ok s -> s | Error e -> Alcotest.fail e
  in
  match S.warm_handle sol0 with
  | None -> Alcotest.fail "no warm handle"
  | Some warm -> (
    (* Modest relax keeps the snapshot strictly feasible: phase I skipped. *)
    S.rescale_compiled prepared (fun _ -> 0.9);
    let before = Gc.minor_words () in
    let resolved = S.resolve ~warm prepared in
    let delta = Gc.minor_words () -. before in
    match resolved with
    | Error e -> Alcotest.fail e
    | Ok sol ->
      checkb "warm started" true sol.S.warm_started;
      checkb "did some Newton work" true (sol.S.newton_iterations >= 3);
      let per_iter = delta /. float_of_int sol.S.newton_iterations in
      if per_iter > 1000. then
        Alcotest.failf "allocates %.0f minor words per warm Newton iteration"
          per_iter)

let () =
  Alcotest.run "smart_gp"
    [
      ( "solver",
        [
          Alcotest.test_case "symmetric optimum" `Quick test_symmetric_optimum;
          Alcotest.test_case "box volume" `Quick test_box_volume;
          Alcotest.test_case "active bound" `Quick test_active_bound;
          Alcotest.test_case "infeasibility" `Quick test_infeasible_detected;
          Alcotest.test_case "equality elimination" `Quick test_equality_elimination;
          Alcotest.test_case "KKT residual" `Quick test_kkt_residual_small;
          Alcotest.test_case "positive duals" `Quick test_duals_positive;
        ] );
      ( "problem",
        [
          Alcotest.test_case "bound validation" `Quick test_problem_validation;
          Alcotest.test_case "constraint_le" `Quick test_constraint_le_helper;
        ] );
      ( "hot path",
        [
          Alcotest.test_case "rescale_compiled = recompile" `Quick
            test_rescale_compiled_matches_recompile;
          Alcotest.test_case "warm Newton allocation-free" `Quick
            test_warm_resolve_newton_allocation_free;
        ] );
      ( "structure",
        [
          Alcotest.test_case "merge partition" `Quick
            test_merge_structure_partition;
          Alcotest.test_case "block path = dense path" `Quick
            test_block_path_matches_dense;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_warm_resolve_matches_cold;
            prop_no_sampled_point_beats_solver;
            prop_solution_feasible;
            prop_objective_scaling_invariance;
            prop_redundant_constraint_harmless;
          ] );
    ]
