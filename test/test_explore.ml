(* Unit tests: Smart_explore (topology comparison, Fig. 1 / §6.3 flow). *)

module Explore = Smart_explore.Explore
module Db = Smart_database.Database
module C = Smart_constraints.Constraints
module Sizer = Smart_sizer.Sizer
module Macro = Smart_macros.Macro
module Mux = Smart_macros.Mux
module Tech = Smart_tech.Tech

let tech = Tech.default
let checkb msg = Alcotest.(check bool) msg

let test_explore_ranks_by_metric () =
  let db = Db.builtins () in
  let req = Db.requirements ~ext_load:25. 4 in
  match
    Explore.explore_typed ~metric:Explore.Area ~db ~kind:"mux" ~requirements:req tech
      (C.spec 150.)
  with
  | Error e -> Alcotest.fail (Smart_util.Err.to_string e)
  | Ok r ->
    checkb "has candidates" true (List.length r.Explore.ranked >= 2);
    let scores = List.map (fun c -> c.Explore.score) r.Explore.ranked in
    checkb "sorted ascending" true
      (List.sort compare scores = scores);
    checkb "winner is head" true
      ((List.hd r.Explore.ranked).Explore.entry_name = r.Explore.winner.Explore.entry_name);
    (* every winner met the spec *)
    List.iter
      (fun c ->
        checkb "meets spec" true
          (c.Explore.outcome.Sizer.achieved_delay <= 150. *. 1.03))
      r.Explore.ranked

let test_explore_reports_rejections () =
  let db = Db.builtins () in
  let req = Db.requirements ~ext_load:25. 4 in
  (* A hard target: some topologies cannot make it and must be listed. *)
  match
    Explore.explore_typed ~db ~kind:"mux" ~requirements:req tech (C.spec 40.)
  with
  | Error _ -> () (* all rejected: acceptable at this target *)
  | Ok r ->
    checkb "ranked + rejected = candidates" true
      (List.length r.Explore.ranked + List.length r.Explore.rejected >= 4)

let test_explore_unknown_kind () =
  let db = Db.builtins () in
  checkb "no candidates error" true
    (match
       Explore.explore_typed ~db ~kind:"fifo" ~requirements:(Db.requirements 4) tech
         (C.spec 100.)
     with
    | Error _ -> true
    | Ok _ -> false)

let test_metric_changes_winner_score () =
  let db = Db.builtins () in
  let req = Db.requirements ~ext_load:25. 8 in
  let spec = C.spec 160. in
  let area = Explore.explore_typed ~metric:Explore.Area ~db ~kind:"mux" ~requirements:req tech spec in
  let power = Explore.explore_typed ~metric:Explore.Power ~db ~kind:"mux" ~requirements:req tech spec in
  match (area, power) with
  | Ok a, Ok p ->
    checkb "scores measured in different units" true
      (a.Explore.winner.Explore.score <> p.Explore.winner.Explore.score)
  | _ -> Alcotest.fail "explore failed"

let test_tune_variants () =
  let v1 = Smart_macros.Comparator.generate ~bits:8 ~xor_group:2 ~or_radix:4 () in
  let v2 = Smart_macros.Comparator.generate ~bits:8 ~xor_group:1 ~or_radix:8 () in
  match
    Explore.tune_typed ~variants:[ ("x2r4", v1); ("x1r8", v2) ] tech (C.spec 140.)
  with
  | Error e -> Alcotest.fail (Smart_util.Err.to_string e)
  | Ok r -> checkb "both sized" true (List.length r.Explore.ranked = 2)

let test_sweep_monotone () =
  let info = Mux.generate Mux.Strongly_mutexed ~n:4 in
  match
    Explore.sweep_area_delay ~points:4 tech info.Macro.netlist (C.spec 1e6)
  with
  | Error e -> Alcotest.fail (Smart_util.Err.to_string e)
  | Ok s ->
    let pts = s.Explore.sweep_curve in
    checkb "has points" true (List.length pts >= 3);
    checkb "skipped + curve = points" true
      (List.length pts + List.length s.Explore.sweep_skipped = 4);
    let rec decreasing = function
      | (_, a) :: ((_, b) :: _ as rest) -> a >= b -. 1e-6 && decreasing rest
      | _ -> true
    in
    checkb "area decreases as delay relaxes" true (decreasing pts);
    let rec increasing = function
      | (d, _) :: ((d', _) :: _ as rest) -> d < d' && increasing rest
      | _ -> true
    in
    checkb "delay targets increase" true (increasing pts)

(* Regression: points = 1 used to compute targets as golden_min * (relax
   + span * 0/0) — a NaN target the sizer then rejected, silently
   returning an empty sweep.  One point must mean one finite target. *)
let test_sweep_single_point () =
  let info = Mux.generate Mux.Strongly_mutexed ~n:4 in
  match
    Explore.sweep_area_delay ~points:1 tech info.Macro.netlist (C.spec 1e6)
  with
  | Error e -> Alcotest.fail (Smart_util.Err.to_string e)
  | Ok s ->
    checkb "exactly one point" true (List.length s.Explore.sweep_curve = 1);
    checkb "nothing skipped" true (s.Explore.sweep_skipped = []);
    let d, a = List.hd s.Explore.sweep_curve in
    checkb "target is finite" true (Float.is_finite d && Float.is_finite a);
    let gm = s.Explore.sweep_min_delay.Sizer.golden_min in
    checkb "target inside the relax range" true
      (d >= gm *. (1.0 -. 1e-9) && d <= gm *. 1.35)

let test_sweep_invalid_points () =
  let info = Mux.generate Mux.Strongly_mutexed ~n:4 in
  match
    Explore.sweep_area_delay ~points:0 tech info.Macro.netlist (C.spec 1e6)
  with
  | Error (Smart_util.Err.Invalid_request _) -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ Smart_util.Err.to_string e)
  | Ok _ -> Alcotest.fail "points = 0 must be rejected"

(* The ranking must not depend on how the menu was ordered or how many
   workers sized it — even when hierarchical sizing engages for a subset
   of the candidates (the larger ones cross the lowered threshold, the
   smaller ones stay monolithic). *)
let test_ranking_invariance () =
  let variants =
    [
      ("mux2", Mux.generate Mux.Strongly_mutexed ~n:2);
      ("mux4", Mux.generate Mux.Strongly_mutexed ~n:4);
      ("mux8", Mux.generate Mux.Strongly_mutexed ~n:8);
      ("mux4u", Mux.generate Mux.Domino_unsplit ~n:4);
    ]
  in
  let hier_options =
    (* Engage hier only for the two larger muxes. *)
    let threshold =
      let count (_, (i : Macro.info)) =
        Smart_circuit.Netlist.instance_count i.Macro.netlist
      in
      let sizes = List.sort compare (List.map count variants) in
      List.nth sizes 2
    in
    { Smart_hier.Hier.default_options with auto_threshold = threshold }
  in
  let engaged =
    List.filter
      (fun (_, (i : Macro.info)) ->
        Smart_hier.Hier.engages ~options:hier_options `Auto i.Macro.netlist)
      variants
  in
  checkb "hier engages for a strict subset" true
    (List.length engaged >= 1 && List.length engaged < List.length variants);
  let spec = C.spec 200. in
  let names r = List.map (fun c -> c.Explore.entry_name) r.Explore.ranked in
  let scores r = List.map (fun c -> c.Explore.score) r.Explore.ranked in
  let run ~order ~workers =
    let engine = Smart_engine.Engine.create ~workers () in
    match
      Explore.tune_typed ~engine ~hier:`Auto ~hier_options ~variants:order tech
        spec
    with
    | Error e -> Alcotest.fail (Smart_util.Err.to_string e)
    | Ok r -> r
  in
  let reference = run ~order:variants ~workers:1 in
  let prop (perm_seed, workers) =
    let order =
      let arr = Array.of_list variants in
      Smart_util.Rng.shuffle (Smart_util.Rng.create perm_seed) arr;
      Array.to_list arr
    in
    let r = run ~order ~workers in
    names r = names reference && scores r = scores reference
  in
  let arb =
    QCheck.make
      ~print:(fun (s, w) -> Printf.sprintf "seed=%d workers=%d" s w)
      QCheck.Gen.(pair (int_bound 1000) (int_range 1 4))
  in
  let cell = QCheck.Test.make ~count:6 ~name:"ranking order/worker invariant" arb prop in
  QCheck.Test.check_exn cell

let () =
  Alcotest.run "smart_explore"
    [
      ( "explore",
        [
          Alcotest.test_case "ranking" `Quick test_explore_ranks_by_metric;
          Alcotest.test_case "rejections" `Quick test_explore_reports_rejections;
          Alcotest.test_case "unknown kind" `Quick test_explore_unknown_kind;
          Alcotest.test_case "metric switch" `Quick test_metric_changes_winner_score;
        ] );
      ( "tools",
        [
          Alcotest.test_case "tune" `Quick test_tune_variants;
          Alcotest.test_case "area-delay sweep" `Quick test_sweep_monotone;
          Alcotest.test_case "single-point sweep" `Quick test_sweep_single_point;
          Alcotest.test_case "invalid points" `Quick test_sweep_invalid_points;
          Alcotest.test_case "ranking invariance" `Slow test_ranking_invariance;
        ] );
    ]
