(* Unit tests: Smart_lint — per-rule violating/passing fixtures, the
   generator cleanliness property, waiver resolution, Strict-mode gating
   (fail before any GP solve), and fault-injection degradation. *)

module Smart = Smart_core.Smart
module Lint = Smart_lint.Lint
module Rules = Smart_lint.Rules
module Report = Smart_lint.Report
module Gen = Smart_check.Gen
module Fault = Smart_util.Fault
module Tracepoint = Smart_util.Tracepoint
module Err = Smart_util.Err
module Cell = Smart_circuit.Cell
module Pdn = Smart_circuit.Pdn
module N = Smart_circuit.Netlist
module B = Smart_circuit.Netlist.Builder

let checkb msg = Alcotest.(check bool) msg
let checki msg = Alcotest.(check int) msg

let fires rule rep =
  List.exists (fun (d : Report.diag) -> d.Report.rule = rule) rep.Lint.diags

let count_severity sev rep =
  List.length
    (List.filter
       (fun (d : Report.diag) ->
         d.Report.severity = sev && not d.Report.waived)
       rep.Lint.diags)

let inv = Cell.inverter

(* ---------------- per-rule: violating fixtures fire ---------------- *)

let test_broken_variants_fire () =
  List.iter
    (fun (rule, nl) ->
      let rep = Lint.run nl in
      checkb (Printf.sprintf "%s fires on %s" rule nl.N.name) true
        (fires rule rep))
    (Gen.broken ())

let test_broken_covers_every_rule () =
  let covered = List.map fst (Gen.broken ()) in
  List.iter
    (fun (r : Rules.rule) ->
      checkb (Printf.sprintf "broken variant exists for %s" r.Rules.id) true
        (List.mem r.Rules.id covered))
    Rules.builtin

(* ---------------- per-rule: conforming twins are silent ------------- *)

(* A 3-inverter chain: the universally clean baseline. *)
let clean_chain () =
  let b = B.create "clean_chain" in
  let i = B.input b "in" in
  let w1 = B.wire b "w1" and w2 = B.wire b "w2" in
  let out = B.output b "out" in
  B.inst b ~name:"g0" ~cell:(inv ~p:"P0" ~n:"N0") ~inputs:[ ("a", i) ]
    ~out:w1 ();
  B.inst b ~name:"g1" ~cell:(inv ~p:"P1" ~n:"N1") ~inputs:[ ("a", w1) ]
    ~out:w2 ();
  B.inst b ~name:"g2" ~cell:(inv ~p:"P2" ~n:"N2") ~inputs:[ ("a", w2) ]
    ~out ();
  B.ext_load b out 5.;
  B.freeze b

let domino1 ?(footed = true) ?(keeper = true) ~tag () =
  Cell.Domino
    {
      gate_name = "dyn1";
      pull_down = Pdn.leaf ~pin:"a" ~label:(tag ^ "N");
      precharge = tag ^ "P";
      eval = (if footed then Some (tag ^ "F") else None);
      out_p = tag ^ "OP";
      out_n = tag ^ "ON";
      keeper;
    }

(* Provably complementary tri-state enables: silent for contention. *)
let twin_tristate () =
  let b = B.create "twin_tristate" in
  let in0 = B.input b "in0" and in1 = B.input b "in1" in
  let en = B.input b "en" in
  let enb = B.wire b "enb" in
  let bus = B.wire b "bus" in
  let out = B.output b "out" in
  B.inst b ~name:"eninv" ~cell:(inv ~p:"EP" ~n:"EN") ~inputs:[ ("a", en) ]
    ~out:enb ();
  B.inst b ~name:"t0"
    ~cell:(Cell.Tristate { p_label = "TP0"; n_label = "TN0" })
    ~inputs:[ ("d", in0); ("en", en) ]
    ~out:bus ();
  B.inst b ~name:"t1"
    ~cell:(Cell.Tristate { p_label = "TP1"; n_label = "TN1" })
    ~inputs:[ ("d", in1); ("en", enb) ]
    ~out:bus ();
  B.inst b ~name:"buf" ~cell:(inv ~p:"P1" ~n:"N1") ~inputs:[ ("a", bus) ]
    ~out ();
  B.ext_load b out 5.;
  B.freeze b

(* Provably complementary pass selects: silent for sneak-path. *)
let twin_sneak () =
  let b = B.create "twin_sneak" in
  let d0 = B.input b "d0" and d1 = B.input b "d1" in
  let s = B.input b "s" in
  let sb = B.wire b "sb" in
  let m = B.wire b "m" in
  let out = B.output b "out" in
  B.inst b ~name:"sinv" ~cell:(inv ~p:"SP" ~n:"SN") ~inputs:[ ("a", s) ]
    ~out:sb ();
  B.inst b ~name:"pg0"
    ~cell:(Cell.Passgate { style = Cell.Cmos_tgate; label = "PG0" })
    ~inputs:[ ("d", d0); ("s", s) ]
    ~out:m ();
  B.inst b ~name:"pg1"
    ~cell:(Cell.Passgate { style = Cell.Cmos_tgate; label = "PG1" })
    ~inputs:[ ("d", d1); ("s", sb) ]
    ~out:m ();
  B.inst b ~name:"buf" ~cell:(inv ~p:"P1" ~n:"N1") ~inputs:[ ("a", m) ]
    ~out ();
  B.ext_load b out 5.;
  B.freeze b

(* Footed dominos chained D1 -> D2: monotone and precharge-low, silent
   for both domino rules; keeper = true with three readers, silent for
   the keeper rule. *)
let twin_domino () =
  let b = B.create "twin_domino" in
  let i = B.input b "in" in
  let x = B.wire b "x" in
  B.inst b ~name:"d1" ~cell:(domino1 ~tag:"A" ()) ~inputs:[ ("a", i) ]
    ~out:x ();
  List.iter
    (fun k ->
      let out = B.output b (Printf.sprintf "out%d" k) in
      B.inst b
        ~name:(Printf.sprintf "d2_%d" k)
        ~cell:(domino1 ~footed:false ~tag:(Printf.sprintf "B%d" k) ())
        ~inputs:[ ("a", x) ] ~out ();
      B.ext_load b out 5.)
    [ 0; 1; 2 ];
  B.freeze b

(* A 3-hop restored transmission-gate chain: silent for pass-depth and
   vt-drop. *)
let twin_pass () =
  let b = B.create "twin_pass" in
  let d = B.input b "in" in
  let out = B.output b "out" in
  let last =
    List.fold_left
      (fun prev k ->
        let s = B.input b (Printf.sprintf "s%d" k) in
        let m = B.wire b (Printf.sprintf "m%d" k) in
        B.inst b
          ~name:(Printf.sprintf "pg%d" k)
          ~cell:
            (Cell.Passgate
               { style = Cell.Cmos_tgate; label = Printf.sprintf "PG%d" k })
          ~inputs:[ ("d", prev); ("s", s) ]
          ~out:m ();
        m)
      d [ 0; 1; 2 ]
  in
  B.inst b ~name:"restore" ~cell:(inv ~p:"P1" ~n:"N1")
    ~inputs:[ ("a", last) ] ~out ();
  B.ext_load b out 5.;
  B.freeze b

(* The dominance-broken fixture with the heavy reader slimmed to one
   inverter: the class still merges, the representative now dominates. *)
let twin_dominance () =
  let b = B.create "twin_dominance" in
  let i = B.input b "in" in
  let a = B.wire b "a" and c = B.wire b "c" in
  B.inst b ~name:"da" ~cell:(inv ~p:"P1" ~n:"N1") ~inputs:[ ("a", i) ]
    ~out:a ();
  B.inst b ~name:"dc" ~cell:(inv ~p:"P1" ~n:"N1") ~inputs:[ ("a", i) ]
    ~out:c ();
  List.iter
    (fun k ->
      let out = B.output b (Printf.sprintf "out%d" k) in
      B.inst b
        ~name:(Printf.sprintf "r%d" k)
        ~cell:
          (inv ~p:(Printf.sprintf "RP%d" k) ~n:(Printf.sprintf "RN%d" k))
        ~inputs:[ ("a", a) ] ~out ();
      B.ext_load b out 5.)
    [ 0; 1; 2 ];
  let out3 = B.output b "out3" in
  B.inst b ~name:"light" ~cell:(inv ~p:"LP" ~n:"LN") ~inputs:[ ("a", c) ]
    ~out:out3 ();
  B.ext_load b out3 5.;
  B.freeze b

let test_conforming_twins_silent () =
  let twins =
    [
      ("elec/comb-loop", clean_chain ());
      ("elec/undriven", clean_chain ());
      ("elec/no-reader", clean_chain ());
      ("elec/drive-fight", twin_tristate ());
      ("elec/tristate-contention", twin_tristate ());
      ("family/domino-monotone", twin_domino ());
      ("family/unfooted-input", twin_domino ());
      ("family/keeper", twin_domino ());
      ("family/pass-depth", twin_pass ());
      ("family/sneak-path", twin_sneak ());
      ("family/vt-drop", twin_pass ());
      ("reg/label-role", clean_chain ());
      ("reg/dominance", twin_dominance ());
      ("cover/arc", clean_chain ());
      ("cover/orphan-label", clean_chain ());
    ]
  in
  List.iter
    (fun (rule, nl) ->
      let rep = Lint.run nl in
      checkb
        (Printf.sprintf "%s silent on %s" rule nl.N.name)
        false (fires rule rep))
    twins

let test_clean_chain_fully_clean () =
  let rep = Lint.run (clean_chain ()) in
  checki "no diagnostics at all" 0 (List.length rep.Lint.diags);
  checkb "ok" true (Lint.ok rep)

(* ---------------- generator cleanliness property ---------------- *)

let test_generated_netlists_error_free () =
  for seed = 1 to 50 do
    let nl = Gen.netlist ~gates:30 ~seed () in
    let rep = Lint.run nl in
    checki
      (Printf.sprintf "seed %d: zero Error diagnostics" seed)
      0
      (count_severity Report.Error rep)
  done

(* ---------------- waivers ---------------- *)

let test_waiver_resolution () =
  (* The vt-drop violator, with the finding waived in-netlist. *)
  let b = B.create "waived_vt" in
  let i = B.input b "in" in
  let s0 = B.input b "s0" and s1 = B.input b "s1" in
  let x = B.wire b "x" and y = B.wire b "y" in
  let out = B.output b "out" in
  B.inst b ~name:"pn"
    ~cell:(Cell.Passgate { style = Cell.N_only; label = "PGN" })
    ~inputs:[ ("d", i); ("s", s0) ]
    ~out:x ();
  B.inst b ~name:"pp"
    ~cell:(Cell.Passgate { style = Cell.P_only; label = "PGP" })
    ~inputs:[ ("d", x); ("s", s1) ]
    ~out:y ();
  B.inst b ~name:"rcv" ~cell:(inv ~p:"P1" ~n:"N1") ~inputs:[ ("a", y) ]
    ~out ();
  B.ext_load b out 5.;
  B.waive b ~rule:"family/vt-drop" ~loc:"y" "restored downstream (test)";
  let nl = B.freeze b in
  let rep = Lint.run nl in
  let vt_diags =
    List.filter
      (fun (d : Report.diag) -> d.Report.rule = "family/vt-drop")
      rep.Lint.diags
  in
  checkb "vt-drop still reported" true (vt_diags <> []);
  checkb "every Error-severity vt-drop diag on y is waived" true
    (List.for_all
       (fun (d : Report.diag) ->
         d.Report.severity <> Report.Error
         || Report.loc_name d.Report.loc <> "y"
         || d.Report.waived)
       vt_diags);
  checkb "no unwaived error on the waived net" true
    (List.for_all
       (fun (d : Report.diag) -> Report.loc_name d.Report.loc <> "y")
       (Lint.errors rep))

(* ---------------- registry ---------------- *)

let test_only_selection () =
  let rep = Lint.run ~only:[ "elec/undriven" ] (clean_chain ()) in
  checki "one rule run" 1 rep.Lint.rules_run;
  checkb "unknown id rejected" true
    (match Lint.run ~only:[ "no/such-rule" ] (clean_chain ()) with
    | exception Err.Smart_error _ -> true
    | _ -> false)

(* ---------------- report rendering ---------------- *)

let contains_sub text sub =
  let n = String.length text and m = String.length sub in
  let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_report_rendering () =
  let nl = List.assoc "family/vt-drop" (Gen.broken ()) in
  let rep = Lint.run nl in
  let text = Lint.to_text rep in
  let json = Lint.to_json rep in
  checkb "text names the rule" true (contains_sub text "family/vt-drop");
  checkb "json names the rule" true (contains_sub json "family/vt-drop")

(* ---------------- Strict gating: fail before any GP solve ----------- *)

(* A database whose only entry emits a discipline-violating netlist. *)
let violating_db () =
  let db = Smart.Database.create () in
  Smart.Database.register db
    {
      Smart.Database.entry_name = "bad/vt-drop";
      kind = "bad";
      description = "intentionally violating (test)";
      applicable = (fun _ -> true);
      build =
        (fun (r : Smart.Database.requirements) ->
          let b = B.create "bad_vt" in
          let i = B.input b "in" in
          let s0 = B.input b "s0" and s1 = B.input b "s1" in
          let x = B.wire b "x" and y = B.wire b "y" in
          let out = B.output b "out" in
          B.inst b ~name:"pn"
            ~cell:(Cell.Passgate { style = Cell.N_only; label = "PGN" })
            ~inputs:[ ("d", i); ("s", s0) ]
            ~out:x ();
          B.inst b ~name:"pp"
            ~cell:(Cell.Passgate { style = Cell.P_only; label = "PGP" })
            ~inputs:[ ("d", x); ("s", s1) ]
            ~out:y ();
          B.inst b ~name:"rcv" ~cell:(inv ~p:"P1" ~n:"N1")
            ~inputs:[ ("a", y) ] ~out ();
          B.ext_load b out r.Smart.Database.ext_load;
          Smart.Macro.make ~kind:"bad" ~variant:"vt-drop" ~bits:r.bits
            (B.freeze b));
    };
  db

let spans = ref []

let with_span_capture f =
  spans := [];
  Tracepoint.set_sink
    (Some (fun (e : Tracepoint.event) -> spans := e.Tracepoint.span :: !spans));
  Fun.protect ~finally:(fun () -> Tracepoint.set_sink None) f

let test_strict_fails_before_gp () =
  let req =
    Smart.Request.make ~kind:"bad" ~bits:2 ~lint:`Strict
      ~engine:(Smart.Engine.create ~workers:1 ())
      ()
  in
  with_span_capture @@ fun () ->
  (match Smart.run ~db:(violating_db ()) req with
  | Error (Smart.Error.Lint_failed { netlist; diagnostics }) ->
    checkb "netlist named" true (netlist = "bad_vt");
    checkb "vt-drop in payload" true
      (List.exists (fun (r, _, _) -> r = "family/vt-drop") diagnostics)
  | Ok _ -> Alcotest.fail "Strict lint admitted a violating netlist"
  | Error e ->
    Alcotest.fail ("wrong error: " ^ Smart.Error.to_string e));
  checkb "lint.run span emitted" true (List.mem Lint.span !spans);
  checkb "no gp.solve span before the failure" false
    (List.mem "gp.solve" !spans)

let test_warn_mode_attaches_reports () =
  let req =
    Smart.Request.make ~kind:"bad" ~bits:2 ~lint:`Warn
      ~engine:(Smart.Engine.create ~workers:1 ())
      ()
  in
  match Smart.run ~db:(violating_db ()) req with
  | Ok advice ->
    checkb "lint reports attached" true (advice.Smart.lints <> []);
    checkb "violation reported but not gating" true
      (List.exists (fun rep -> not (Lint.ok rep)) advice.Smart.lints)
  | Error e -> Alcotest.fail ("warn mode failed: " ^ Smart.Error.to_string e)

let test_off_mode_no_reports () =
  let req =
    Smart.Request.make ~kind:"bad" ~bits:2 ~lint:`Off
      ~engine:(Smart.Engine.create ~workers:1 ())
      ()
  in
  match Smart.run ~db:(violating_db ()) req with
  | Ok advice -> checki "no lint reports" 0 (List.length advice.Smart.lints)
  | Error e -> Alcotest.fail ("off mode failed: " ^ Smart.Error.to_string e)

(* ---------------- fault injection ---------------- *)

let test_rule_crash_degrades () =
  Fault.reset ();
  let nl = clean_chain () in
  Fault.arm Lint.fault_site (Fault.Raise "injected (test)");
  let rep = Lint.run nl in
  Fault.reset ();
  checkb "crash recorded" true (rep.Lint.crashed <> []);
  checkb "lint/rule-crash warning present" true (fires "lint/rule-crash" rep);
  checkb "still ok (warning, not error)" true (Lint.ok rep);
  checki "all rules still accounted" (List.length (Lint.rules ()))
    rep.Lint.rules_run;
  (* Clean rerun: no sticky state. *)
  let rep' = Lint.run nl in
  checkb "rerun clean" true (rep'.Lint.crashed = [])

(* A strict request survives a crashed rule (the crash degrades to a
   warning, which does not gate) and the engine cache stays clean: the
   same request re-run without the fault returns the same best topology. *)
let test_strict_survives_rule_crash () =
  Fault.reset ();
  let engine = Smart.Engine.create ~workers:1 () in
  let req =
    Smart.Request.make ~kind:"mux" ~bits:2 ~lint:`Strict ~engine ()
  in
  Fault.arm Lint.fault_site (Fault.Raise "injected (test)");
  let first = Smart.run req in
  Fault.reset ();
  let second = Smart.run req in
  (match (first, second) with
  | Ok a, Ok b ->
    let best (ad : Smart.advice) =
      match ad.Smart.ranking.Smart.Explore.ranked with
      | c :: _ -> c.Smart.Explore.entry_name
      | [] -> ""
    in
    Alcotest.(check string) "same best topology after crash" (best b) (best a)
  | Error e, _ ->
    Alcotest.fail ("request aborted by rule crash: " ^ Smart.Error.to_string e)
  | _, Error e ->
    Alcotest.fail ("clean rerun failed: " ^ Smart.Error.to_string e));
  Fault.reset ()

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "broken variants fire" `Quick
            test_broken_variants_fire;
          Alcotest.test_case "broken covers every rule" `Quick
            test_broken_covers_every_rule;
          Alcotest.test_case "conforming twins silent" `Quick
            test_conforming_twins_silent;
          Alcotest.test_case "clean chain fully clean" `Quick
            test_clean_chain_fully_clean;
        ] );
      ( "generator",
        [
          Alcotest.test_case "50 seeds error-free" `Slow
            test_generated_netlists_error_free;
        ] );
      ( "waivers",
        [ Alcotest.test_case "waiver resolution" `Quick test_waiver_resolution ]
      );
      ( "registry",
        [ Alcotest.test_case "only selection" `Quick test_only_selection ] );
      ( "report",
        [ Alcotest.test_case "rendering" `Quick test_report_rendering ] );
      ( "strict",
        [
          Alcotest.test_case "fails before GP solve" `Quick
            test_strict_fails_before_gp;
          Alcotest.test_case "warn attaches reports" `Quick
            test_warn_mode_attaches_reports;
          Alcotest.test_case "off produces no reports" `Quick
            test_off_mode_no_reports;
        ] );
      ( "faults",
        [
          Alcotest.test_case "rule crash degrades" `Quick
            test_rule_crash_degrades;
          Alcotest.test_case "strict survives crash, cache clean" `Quick
            test_strict_survives_rule_crash;
        ] );
    ]
