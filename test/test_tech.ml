(* Unit tests: Smart_tech (technology parameters). *)

module Tech = Smart_tech.Tech

let checkb msg = Alcotest.(check bool) msg
let checkf tol msg = Alcotest.(check (float tol)) msg

let t = Tech.default

let test_derived_quantities () =
  checkf 1e-9 "res_n inverse in width" (t.Tech.rn /. 2.) (Tech.res_n t 2.);
  checkf 1e-9 "res_p" (t.Tech.rp /. 4.) (Tech.res_p t 4.);
  checkf 1e-9 "gate cap linear" (t.Tech.cg *. 3.) (Tech.cap_gate t 3.);
  checkf 1e-9 "drain cap linear" (t.Tech.cd *. 3.) (Tech.cap_drain t 3.)

let test_fo4_sane () =
  let fo4 = Tech.fo4_delay t in
  (* A 180nm-class FO4 sits in the tens of picoseconds. *)
  checkb "FO4 in 10..100 ps" true (fo4 > 10. && fo4 < 100.)

let test_fo4_width_invariant () =
  (* FO4 is a ratioed metric: uniform RC scaling moves it quadratically
     with the scale factor's square root pair (r*s, c*s) -> fo4*s. *)
  let scaled = Tech.scaled ~rc_scale:4. t in
  checkf 1e-6 "scaling law" (4. *. Tech.fo4_delay t) (Tech.fo4_delay scaled)

let test_scaled_name () =
  let s = Tech.scaled ~rc_scale:2. ~name:"slow" t in
  Alcotest.(check string) "renamed" "slow" s.Tech.name;
  checkb "default suffix" true
    (String.length (Tech.scaled t).Tech.name > String.length t.Tech.name)

let test_scaled_name_normalized () =
  (* Repeated unnamed scaling must not compound the suffix. *)
  let twice = Tech.scaled (Tech.scaled t) in
  Alcotest.(check string) "one suffix only" (t.Tech.name ^ "-scaled")
    twice.Tech.name;
  let thrice = Tech.scaled twice in
  Alcotest.(check string) "still one suffix" (t.Tech.name ^ "-scaled")
    thrice.Tech.name

let test_scaled_cumulative_rc_scale () =
  checkf 1e-9 "default is nominal" 1.0 t.Tech.rc_scale;
  let s = Tech.scaled ~rc_scale:2. (Tech.scaled ~rc_scale:3. t) in
  checkf 1e-9 "composes multiplicatively" 6.0 s.Tech.rc_scale;
  checkf 1e-9 "explicit name keeps the record"
    1.4 (Tech.scaled ~rc_scale:1.4 ~name:"slow" t).Tech.rc_scale

let test_scaled_sqrt_split () =
  (* rc_scale splits as sqrt across R and C so every RC product (hence
     every delay) scales exactly by rc_scale. *)
  let s = Tech.scaled ~rc_scale:4. t in
  checkf 1e-9 "R side takes sqrt" (sqrt 4. *. t.Tech.rn) s.Tech.rn;
  checkf 1e-9 "C side takes sqrt" (sqrt 4. *. t.Tech.cg) s.Tech.cg;
  checkf 1e-9 "RC product scales linearly" (4. *. t.Tech.rn *. t.Tech.cg)
    (s.Tech.rn *. s.Tech.cg)

let test_rc_ratio_recognises_scaled () =
  (match Tech.rc_ratio ~base:t t with
  | Some k -> checkf 1e-12 "identity is ratio 1" 1.0 k
  | None -> Alcotest.fail "identity not recognised");
  (match Tech.rc_ratio ~base:t (Tech.scaled ~rc_scale:1.4 ~name:"slow" t) with
  | Some k -> checkf 1e-9 "scaled corner recovered" 1.4 k
  | None -> Alcotest.fail "scaled corner not recognised");
  match Tech.rc_ratio ~base:t (Tech.scaled ~rc_scale:2. (Tech.scaled ~rc_scale:3. t)) with
  | Some k -> checkf 1e-9 "composition recovered" 6.0 k
  | None -> Alcotest.fail "composed scaling not recognised"

let test_rc_ratio_rejects_other_excursions () =
  (* Any non-RC parameter difference disqualifies the pure-RC fast path. *)
  checkb "beta excursion rejected" true
    (Tech.rc_ratio ~base:t { t with Tech.beta = t.Tech.beta *. 1.01 } = None);
  checkb "vdd excursion rejected" true
    (Tech.rc_ratio ~base:t { t with Tech.vdd = t.Tech.vdd +. 0.1 } = None);
  (* An RC change that does not split as sqrt across R and C is not a
     uniform excursion either. *)
  checkb "lopsided RC rejected" true
    (Tech.rc_ratio ~base:t { t with Tech.rn = t.Tech.rn *. 1.4 } = None)

let test_parameter_sanity () =
  checkb "PMOS weaker" true (t.Tech.rp > t.Tech.rn);
  checkb "bounds ordered" true (t.Tech.w_min < t.Tech.w_max);
  checkb "slope cap above default input slope" true
    (t.Tech.slope_max > t.Tech.default_input_slope)

let () =
  Alcotest.run "smart_tech"
    [
      ( "tech",
        [
          Alcotest.test_case "derived" `Quick test_derived_quantities;
          Alcotest.test_case "fo4 sane" `Quick test_fo4_sane;
          Alcotest.test_case "fo4 scaling" `Quick test_fo4_width_invariant;
          Alcotest.test_case "scaled naming" `Quick test_scaled_name;
          Alcotest.test_case "scaled naming normalized" `Quick
            test_scaled_name_normalized;
          Alcotest.test_case "cumulative rc_scale" `Quick
            test_scaled_cumulative_rc_scale;
          Alcotest.test_case "sqrt RC split" `Quick test_scaled_sqrt_split;
          Alcotest.test_case "rc_ratio recognises scaled" `Quick
            test_rc_ratio_recognises_scaled;
          Alcotest.test_case "rc_ratio rejects other excursions" `Quick
            test_rc_ratio_rejects_other_excursions;
          Alcotest.test_case "parameter sanity" `Quick test_parameter_sanity;
        ] );
    ]
