(* Serve subsystem tests: wire-codec round trips (property-based),
   malformed-input hardening, the persistent solve cache across an engine
   "restart", and the serve.worker crash drill. *)

module Engine = Smart_engine.Engine
module Err = Smart_util.Err
module Fault = Smart_util.Fault
module Jsonx = Smart_serve.Jsonx
module Wire = Smart_serve.Wire
module Store = Smart_serve.Store
module Server = Smart_serve.Server

let checkb msg = Alcotest.(check bool) msg
let checks msg = Alcotest.(check string) msg

(* ---------------- generators ---------------- *)

(* Finite doubles with both "nice" and awkward mantissas; the codec's
   shortest-round-trip float printing must reproduce all of them. *)
let finite_float =
  QCheck.(
    map
      (fun (a, (b, c)) ->
        let f = float_of_int a /. (1. +. abs_float (float_of_int b)) in
        if c then f *. 1e-7 else f)
      (pair (int_range (-1_000_000) 1_000_000) (pair (int_range 0 9999) bool)))

let finite_pos_float = QCheck.map abs_float finite_float

let ident =
  QCheck.(
    map
      (fun (c, rest) ->
        String.init (1 + String.length rest) (fun i ->
            if i = 0 then c else rest.[i - 1]))
      (pair
         (make Gen.(map Char.chr (int_range (Char.code 'a') (Char.code 'z'))))
         (make Gen.(string_size ~gen:printable (int_bound 12)))))

let wire_request : Wire.Request.t QCheck.arbitrary =
  let open QCheck in
  let op = oneofl Wire.Request.[ Advise; Ping; Stats; Shutdown ] in
  let tech_spec =
    map
      (fun (rc, name) ->
        { Wire.Request.base = "default"; rc_scale = rc; tech_name = name })
      (pair (option finite_pos_float) (option ident))
  in
  let options_spec =
    map
      (fun ((mi, tol), (damp, (warm, cert))) ->
        {
          Wire.Request.max_iterations = mi;
          tolerance = tol;
          damping = damp;
          gp_warm_start = warm;
          certify = cert;
        })
      (pair
         (pair (option (int_range 1 40)) (option finite_pos_float))
         (pair (option finite_pos_float) (pair (option bool) (option bool))))
  in
  map
    (fun ((id, op), ((kind, bits), ((load, delay), ((metric, lint), ((corners, tech), opts)))))
       ->
      Wire.Request.
        {
          v = Wire.version;
          id;
          op;
          kind;
          bits;
          ext_load = load;
          strongly_mutexed_selects = None;
          allow_dynamic = None;
          delay;
          metric;
          lint;
          corners;
          tech;
          options = opts;
        })
    (pair (pair (option ident) op)
       (pair
          (pair ident (int_range 1 64))
          (pair
             (pair (option finite_pos_float) (option finite_pos_float))
             (pair
                (pair (option (oneofl [ "area"; "power"; "clock" ]))
                   (option (oneofl [ "off"; "warn"; "strict" ])))
                (pair (pair (option ident) (option tech_spec)) (option options_spec))))))

let wire_error : Err.t QCheck.arbitrary =
  let open QCheck in
  let s = small_printable_string in
  oneof
    [
      map (fun kind -> Err.No_applicable_topology { kind }) s;
      map
        (fun (t, d) -> Err.Infeasible_spec { target_ps = t; detail = d })
        (pair finite_float s);
      map (fun d -> Err.Gp_failure d) s;
      map
        (fun (t, i) -> Err.Sta_disagreement { target_ps = t; iterations = i })
        (pair finite_float small_nat);
      map (fun d -> Err.Invalid_request d) s;
      map
        (fun (i, d) -> Err.Worker_crash { item = i; detail = d })
        (pair small_nat s);
      map
        (fun (n, diags) -> Err.Lint_failed { netlist = n; diagnostics = diags })
        (pair s (small_list (triple s s s)));
      map
        (fun (f, d) -> Err.Bad_request { field = f; detail = d })
        (pair (option s) s);
      map
        (fun (q, l) -> Err.Overloaded { queued = q; limit = l })
        (pair small_nat small_nat);
    ]

let wire_advice : Wire.Advice.t QCheck.arbitrary =
  let open QCheck in
  let corner =
    map
      (fun ((c, d), s) ->
        { Wire.Advice.corner = c; delay_ps = d; slack_ps = s })
      (pair (pair ident finite_float) finite_float)
  in
  let candidate =
    map
      (fun (((e, (d, w)), (c, (p, s))), ((i, b), (cs, sz))) ->
        {
          Wire.Advice.entry = e;
          delay_ps = d;
          width_um = w;
          clock_um = c;
          power_uw = p;
          score = s;
          iterations = i;
          binding_corner = b;
          corners = cs;
          sizing = sz;
        })
      (pair
         (pair
            (pair ident (pair finite_float finite_float))
            (pair finite_float (pair finite_float finite_float)))
         (pair
            (pair small_nat (option ident))
            (pair (small_list corner) (small_list (pair ident finite_pos_float)))))
  in
  map
    (fun ((w, (m, t)), (r, rej)) ->
      {
        Wire.Advice.v = Wire.version;
        winner = w;
        metric = m;
        target_ps = t;
        ranked = r;
        rejected = rej;
      })
    (pair
       (pair ident (pair ident finite_float))
       (pair (small_list candidate) (small_list (pair ident ident))))

(* ---------------- codec round trips ---------------- *)

let roundtrip_request =
  QCheck.Test.make ~name:"wire request round-trips through its line form"
    ~count:300 wire_request (fun r ->
      match Wire.Request.of_line (Wire.Request.to_line r) with
      | Ok r' -> r' = r
      | Error _ -> false)

let roundtrip_error =
  QCheck.Test.make ~name:"wire error round-trips through code + data"
    ~count:300 wire_error (fun e ->
      match Wire.Error.decode (Wire.Error.encode e) with
      | Ok e' -> e' = e
      | Error _ -> false)

let roundtrip_advice =
  QCheck.Test.make ~name:"wire advice round-trips" ~count:200 wire_advice
    (fun a ->
      match Wire.Advice.decode (Wire.Advice.encode a) with
      | Ok a' -> a' = a
      | Error _ -> false)

let roundtrip_response =
  QCheck.Test.make ~name:"wire response envelope round-trips" ~count:200
    QCheck.(pair wire_advice (pair (option ident) wire_error))
    (fun (a, (id, e)) ->
      let ok =
        Wire.Response.ok ?id ~cache:"memory" ~wall_ms:12.25 a
      in
      let err = Wire.Response.error ?id e in
      let rt r =
        match Wire.Response.of_line (Wire.Response.to_line r) with
        | Ok r' -> r' = r
        | Error _ -> false
      in
      rt ok && rt err)

let roundtrip_diagnostics =
  QCheck.Test.make
    ~name:"response diagnostics round-trip (and vanish when empty)"
    ~count:200
    QCheck.(pair wire_advice (small_list ident))
    (fun (a, diags) ->
      let ok = Wire.Response.ok ~cache:"solved" ~diagnostics:diags a in
      let line = Wire.Response.to_line ok in
      (* Diagnostic-free responses stay byte-identical to the pre-field
         wire form; non-empty lists survive the round trip. *)
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec at i =
          i + nn <= nh && (String.sub hay i nn = needle || at (i + 1))
        in
        at 0
      in
      contains line "\"diagnostics\"" = (diags <> [])
      &&
      match Wire.Response.of_line line with
      | Ok r' -> r'.Wire.Response.diagnostics = diags
      | Error _ -> false)

let test_absent_diagnostics_decodes_empty () =
  (* A v1 response emitted before the field existed. *)
  let old = {|{"v":1,"pong":true}|} in
  match Wire.Response.of_line old with
  | Ok r ->
    Alcotest.(check (list string))
      "absent field decodes as []" [] r.Wire.Response.diagnostics
  | Error e -> Alcotest.fail (Err.to_string e)

(* The parser itself must be total; fuzz it with raw bytes. *)
let parser_total =
  QCheck.Test.make ~name:"jsonx parser never raises" ~count:500
    QCheck.(make Gen.(string_size ~gen:char (int_bound 40)))
    (fun s ->
      match Jsonx.parse s with Ok _ | Error _ -> true)

(* ---------------- tolerance and hardening ---------------- *)

let test_unknown_fields_ignored () =
  let line =
    {|{"v":1,"op":"advise","kind":"mux","bits":4,"from_the_future":{"x":[1,2]},"another":null}|}
  in
  match Wire.Request.of_line line with
  | Error e -> Alcotest.fail (Err.to_string e)
  | Ok r ->
    checks "kind survives" "mux" r.Wire.Request.kind;
    Alcotest.(check int) "bits survive" 4 r.Wire.Request.bits

let test_malformed_is_bad_request () =
  let is_bad line =
    match Wire.Request.of_line line with
    | Error (Err.Bad_request _) -> true
    | Error _ | Ok _ -> false
  in
  checkb "truncated object" true (is_bad "{");
  checkb "trailing garbage" true (is_bad "{} {}");
  checkb "wrong field shape" true (is_bad {|{"bits":"four"}|});
  checkb "future protocol version" true (is_bad {|{"v":99,"kind":"mux"}|});
  checkb "unknown op" true (is_bad {|{"op":"frobnicate"}|});
  checkb "non-object" true (is_bad "[1,2,3]")

let test_elaborate_validation () =
  let field line =
    match Wire.Request.of_line line with
    | Error (Err.Bad_request { field; _ }) -> field
    | Ok r -> (
      match Wire.Request.elaborate r with
      | Error (Err.Bad_request { field; _ }) -> field
      | Error _ | Ok _ -> None)
    | Error _ -> None
  in
  Alcotest.(check (option string)) "missing kind" (Some "kind") (field {|{"bits":4}|});
  Alcotest.(check (option string)) "bad bits" (Some "bits")
    (field {|{"kind":"mux","bits":0}|});
  Alcotest.(check (option string)) "bad metric" (Some "metric")
    (field {|{"kind":"mux","bits":4,"metric":"speed"}|});
  Alcotest.(check (option string)) "bad lint" (Some "lint")
    (field {|{"kind":"mux","bits":4,"lint":"pedantic"}|});
  Alcotest.(check (option string)) "bad corners" (Some "corners")
    (field {|{"kind":"mux","bits":4,"corners":"typ,typ"}|});
  Alcotest.(check (option string)) "bad tech base" (Some "tech.base")
    (field {|{"kind":"mux","bits":4,"tech":{"base":"cmos9"}}|});
  Alcotest.(check (option string)) "bad rc_scale" (Some "tech.rc_scale")
    (field {|{"kind":"mux","bits":4,"tech":{"rc_scale":-2}}|})

(* ---------------- persistent cache across a restart ---------------- *)

let advise_line = {|{"id":"t","op":"advise","kind":"mux","bits":4,"delay":160}|}

let advice_of_line line =
  match Jsonx.parse line with
  | Error e -> Alcotest.fail e
  | Ok j -> (
    match (Jsonx.member "advice" j, Jsonx.member "cache" j) with
    | Some a, Some (Jsonx.Str c) -> (a, c)
    | _ -> Alcotest.fail ("no advice in: " ^ line))

let test_disk_cache_across_restart () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "smart-serve-test-%d" (Unix.getpid ()))
  in
  (* Daemon 1: cold solve, persisted. *)
  let sink1, _events1 = Engine.Trace.memory () in
  let e1 = Engine.create ~workers:1 ~sink:sink1 () in
  let s1 = Server.create ~workers:1 ~cache_dir:dir ~engine:e1 () in
  let a1, c1 = advice_of_line (Server.handle_line s1 advise_line) in
  Server.shutdown s1;
  checks "first serve solved" "solved" c1;
  (* Daemon 2: fresh engine, same directory — must re-serve from disk,
     byte-identical, without running the sizer. *)
  let sink2, events2 = Engine.Trace.memory () in
  let e2 = Engine.create ~workers:1 ~sink:sink2 () in
  let s2 = Server.create ~workers:1 ~cache_dir:dir ~engine:e2 () in
  let a2, c2 = advice_of_line (Server.handle_line s2 advise_line) in
  checks "second serve from disk" "disk" c2;
  checkb "byte-identical advice" true
    (Jsonx.to_string a1 = Jsonx.to_string a2);
  let solved =
    List.exists
      (function
        | Engine.Trace.Sizing { cache = Engine.Trace.Miss; _ }
        | Engine.Trace.Sizing { cache = Engine.Trace.Bypass; _ } ->
          true
        | _ -> false)
      (events2 ())
  in
  checkb "no solve span on the disk-hit serve" false solved;
  let stats = Engine.cache_stats e2 in
  checkb "store hits recorded" true (stats.Engine.store_hits > 0);
  (* In-memory hit on the third serve of the same daemon. *)
  let _, c3 = advice_of_line (Server.handle_line s2 advise_line) in
  checks "third serve from memory" "memory" c3;
  Server.shutdown s2

let test_store_stamp_invalidation () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "smart-serve-stamp-%d" (Unix.getpid ()))
  in
  let s1 = Store.create ~stamp:"v1" ~dir () in
  Store.save s1 (String.make 32 'a') "blob";
  checkb "same-stamp read back" true
    (Store.find s1 (String.make 32 'a') = Some "blob");
  let s2 = Store.create ~stamp:"v2" ~dir () in
  checkb "stamp mismatch is a miss" true
    (Store.find s2 (String.make 32 'a') = None);
  let kept, evicted = Store.warm_up s2 in
  Alcotest.(check int) "stale entry evicted" 1 evicted;
  Alcotest.(check int) "nothing kept" 0 kept;
  checkb "malformed key rejected without I/O" true
    (Store.find s1 "../../etc/passwd" = None)

(* ---------------- crash drill ---------------- *)

let test_worker_crash_drill () =
  let server = Server.create ~workers:1 () in
  Fault.reset ();
  Fault.arm "serve.worker" (Fault.Error_result "injected crash");
  let line = Server.handle_line server advise_line in
  (match Wire.Response.of_line line with
  | Ok { Wire.Response.payload = Wire.Response.Failed (Err.Worker_crash _); _ }
    ->
    ()
  | _ -> Alcotest.fail ("expected worker-crash error, got: " ^ line));
  checkb "fault consumed" true (Fault.fired "serve.worker" > 0);
  (* A raising site degrades the same way. *)
  Fault.arm "serve.worker" (Fault.Raise "injected raise");
  (match Wire.Response.of_line (Server.handle_line server advise_line) with
  | Ok { Wire.Response.payload = Wire.Response.Failed (Err.Worker_crash _); _ }
    ->
    ()
  | _ -> Alcotest.fail "raise did not surface as worker-crash");
  Fault.reset ();
  (* The daemon keeps answering after both crashes. *)
  (match Wire.Response.of_line (Server.handle_line server {|{"op":"ping"}|}) with
  | Ok { Wire.Response.payload = Wire.Response.Pong; _ } -> ()
  | _ -> Alcotest.fail "daemon did not answer ping after crash");
  Server.shutdown server

let test_submit_after_shutdown_is_structured () =
  let server = Server.create ~workers:1 () in
  Server.shutdown server;
  let got = ref "" in
  Server.submit server ~reply:(fun l -> got := l) {|{"op":"ping"}|};
  match Wire.Response.of_line !got with
  | Ok { Wire.Response.payload = Wire.Response.Failed (Err.Invalid_request _); _ }
    ->
    ()
  | _ -> Alcotest.fail ("expected structured refusal, got: " ^ !got)

let () =
  Alcotest.run "smart_serve"
    [
      ( "codecs",
        List.map QCheck_alcotest.to_alcotest
          [
            roundtrip_request;
            roundtrip_error;
            roundtrip_advice;
            roundtrip_response;
            roundtrip_diagnostics;
            parser_total;
          ] );
      ( "hardening",
        [
          Alcotest.test_case "unknown fields ignored" `Quick
            test_unknown_fields_ignored;
          Alcotest.test_case "absent diagnostics decodes empty" `Quick
            test_absent_diagnostics_decodes_empty;
          Alcotest.test_case "malformed input" `Quick
            test_malformed_is_bad_request;
          Alcotest.test_case "elaboration validation" `Quick
            test_elaborate_validation;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "disk cache across restart" `Quick
            test_disk_cache_across_restart;
          Alcotest.test_case "stamp invalidation" `Quick
            test_store_stamp_invalidation;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "serve.worker crash drill" `Quick
            test_worker_crash_drill;
          Alcotest.test_case "refusal after shutdown" `Quick
            test_submit_after_shutdown_is_structured;
        ] );
    ]
