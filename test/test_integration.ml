(* End-to-end integration tests through the Smart facade: the full Figure 1
   advisory flow, exercised the way a designer would call it. *)

module Smart = Smart_core.Smart

let tech = Smart.Tech.default
let checkb msg = Alcotest.(check bool) msg

let test_advise_mux () =
  let db = Smart.Database.builtins () in
  let req = Smart.Database.requirements ~ext_load:30. 4 in
  let request =
    Smart.Request.make ~kind:"mux" ~bits:4 ~delay:140. ()
    |> Smart.Request.with_tech tech
    |> Smart.Request.with_requirements req
  in
  match Smart.run ~db request with
  | Error e -> Alcotest.fail (Smart.Error.to_string e)
  | Ok advice ->
    let w = advice.Smart.ranking.Smart.Explore.winner in
    checkb "winner meets spec" true
      (w.Smart.Explore.outcome.Smart.Sizer.achieved_delay <= 140. *. 1.03);
    checkb "winner is cheapest" true
      (List.for_all
         (fun c -> c.Smart.Explore.score >= w.Smart.Explore.score)
         advice.Smart.ranking.Smart.Explore.ranked);
    (* The sized winner still computes the mux function. *)
    let nl = w.Smart.Explore.info.Smart.Macro.netlist in
    let ins =
      List.init 4 (fun i -> (Printf.sprintf "in%d" i, i = 1))
      @
      match w.Smart.Explore.entry_name with
      | "mux/encoded-2to1-passgate" -> [ ("select", false) ]
      | "mux/weakly-mutexed-passgate" ->
        List.init 3 (fun i -> (Printf.sprintf "s%d" i, i = 1))
      | _ -> List.init 4 (fun i -> (Printf.sprintf "s%d" i, i = 1))
    in
    let out = List.assoc "out" (Smart.Sim.eval_bits nl ins) in
    checkb "function intact" true (Smart.Logic.equal out Smart.Logic.V1)

let test_advise_respects_mutex_requirement () =
  let db = Smart.Database.builtins () in
  let req =
    Smart.Database.requirements ~strongly_mutexed_selects:false ~ext_load:30. 4
  in
  let request =
    Smart.Request.make ~kind:"mux" ~bits:4 ~delay:150. ()
    |> Smart.Request.with_tech tech
    |> Smart.Request.with_requirements req
  in
  match Smart.run ~db request with
  | Error e -> Alcotest.fail (Smart.Error.to_string e)
  | Ok advice ->
    List.iter
      (fun c ->
        checkb "no one-hot-dependent topology offered" true
          (c.Smart.Explore.entry_name <> "mux/strongly-mutexed-passgate"
          && c.Smart.Explore.entry_name <> "mux/unsplit-domino"))
      advice.Smart.ranking.Smart.Explore.ranked

let test_designer_extension_flow () =
  (* Register a custom macro, then get it recommended. *)
  let db = Smart.Database.builtins () in
  Smart.Database.register db
    {
      Smart.Database.entry_name = "zero-detect/flat-nor";
      kind = "zero-detect";
      description = "single wide NOR (only sensible when tiny)";
      applicable = (fun req -> req.Smart.Database.bits <= 4);
      build =
        (fun req ->
          Smart.Zero_detect.generate ~radix:8 ~bits:req.Smart.Database.bits ());
    };
  let req = Smart.Database.requirements ~ext_load:10. 4 in
  let request =
    Smart.Request.make ~kind:"zero-detect" ~bits:4 ~delay:120. ()
    |> Smart.Request.with_tech tech
    |> Smart.Request.with_requirements req
  in
  match Smart.run ~db request with
  | Error e -> Alcotest.fail (Smart.Error.to_string e)
  | Ok advice ->
    checkb "custom entry competed" true
      (List.exists
         (fun c -> c.Smart.Explore.entry_name = "zero-detect/flat-nor")
         advice.Smart.ranking.Smart.Explore.ranked
      || List.exists
           (fun (n, _) -> n = "zero-detect/flat-nor")
           advice.Smart.ranking.Smart.Explore.rejected)

let test_full_paper_flow_small () =
  (* The §6.1 protocol end-to-end on one macro: baseline -> SMART at the
     same performance -> width drops, timing holds (golden-verified). *)
  let info = Smart.Incrementor.generate ~bits:8 () in
  let nl = info.Smart.Macro.netlist in
  match Smart.Sizer.minimize_delay_typed tech nl (Smart.Constraints.spec 1e6) with
  | Error e -> Alcotest.fail (Smart.Error.to_string e)
  | Ok md ->
    let bl =
      Smart.Baseline.size ~target:(1.2 *. md.Smart.Sizer.golden_min) tech nl
    in
    (match
       Smart.Sizer.size_typed tech nl
         (Smart.Constraints.spec bl.Smart.Baseline.achieved_delay)
     with
    | Error e -> Alcotest.fail (Smart.Error.to_string e)
    | Ok o ->
      checkb "same performance" true
        (o.Smart.Sizer.achieved_delay
        <= bl.Smart_baseline.Baseline.achieved_delay *. 1.03);
      checkb "less width" true
        (o.Smart.Sizer.total_width < bl.Smart.Baseline.total_width))

let test_version () = checkb "version string" true (String.length Smart.version > 0)

let () =
  Alcotest.run "smart_integration"
    [
      ( "advise",
        [
          Alcotest.test_case "mux flow" `Slow test_advise_mux;
          Alcotest.test_case "mutex requirement" `Slow test_advise_respects_mutex_requirement;
          Alcotest.test_case "designer extension" `Slow test_designer_extension_flow;
        ] );
      ( "paper protocol",
        [
          Alcotest.test_case "baseline vs SMART" `Slow test_full_paper_flow_small;
          Alcotest.test_case "version" `Quick test_version;
        ] );
    ]
